(* Induction-variable substitution (paper §5.3).

   Operates on normalized DO loops (lo = 0, step = 1).  Variables updated
   once or more per iteration by a loop-invariant amount — possibly
   through the temp chains the front end generates for ++/-- — become
   closed-form expressions in the loop index, making the variation of
   memory references explicit for the vectorizer:

       temp_1 = a;            →   temp_1 = a_init + 4*k
       a = temp_1 + 4;            (update rewritten, then dead-coded)
       *temp_1 = *temp_2;     →   *(a_init + 4*k) = *(b_init + 4*k)

   The pass is organized exactly as the paper's heuristic: repeated passes
   over the loop body; a statement that fails to linearize only because a
   variable it reads is redefined later-recognized is "blocked", and is
   re-examined on the next pass once the blocking statements have been
   substituted.  Worst case n passes, one pass in practice (§5.3). *)

open Vpc_il

type stats = {
  mutable loops_processed : int;
  mutable ivs_found : int;
  mutable substitutions : int;
  mutable passes : int;          (* total linearization passes over bodies *)
  mutable max_passes_one_loop : int;
  mutable blocked_events : int;  (* statements deferred to a later pass *)
}

let new_stats () =
  {
    loops_processed = 0;
    ivs_found = 0;
    substitutions = 0;
    passes = 0;
    max_passes_one_loop = 0;
    blocked_events = 0;
  }

(* Linear form  self_coef * SELF + base + kcoef * k  with [base] and
   [kcoef] loop-invariant expressions. *)
type lin = { self_coef : int; base : Expr.t; kcoef : Expr.t }

type outcome =
  | Lin of lin
  | Blocked   (* may succeed on a later pass *)
  | Fail      (* will never linearize *)

type iv_info = {
  iv_var : Var.t;
  total_delta : Expr.t;                (* invariant per-iteration change *)
  update_positions : (int * Expr.t) list;  (* top-level position, delta *)
  mutable init_var : Var.t option;     (* preheader copy, made on demand *)
}

type loop_env = {
  prog : Prog.t;
  func : Func.t;
  top : Stmt.t array;                  (* top-level statements, in order *)
  pos_of_stmt : (int, int) Hashtbl.t;  (* stmt id -> top position *)
  defs_of : (int, int list) Hashtbl.t; (* var -> top positions defining it *)
  tainted : (int, unit) Hashtbl.t;     (* vars we must not touch *)
  mem_written : bool;
  index_var : int;
  mutable ivs : (int * iv_info) list;
  resolved : (int, lin) Hashtbl.t;     (* top position -> value of that temp *)
}

let zero = Expr.int_const 0

let lin_const e = { self_coef = 0; base = e; kcoef = zero }

(* Result type of mixed arithmetic: pointers and floats win over ints so
   address expressions stay pointer-typed. *)
let combine_ty (a : Expr.t) (b : Expr.t) =
  if Ty.is_pointer a.Expr.ty then a.Expr.ty
  else if Ty.is_pointer b.Expr.ty then b.Expr.ty
  else if Ty.is_float a.Expr.ty then a.Expr.ty
  else if Ty.is_float b.Expr.ty then b.Expr.ty
  else a.Expr.ty

let add_expr a b =
  if Expr.is_zero a then b
  else if Expr.is_zero b then a
  else Vpc_analysis.Simplify.expr (Expr.binop Expr.Add a b (combine_ty a b))

let sub_expr a b =
  Vpc_analysis.Simplify.expr (Expr.binop Expr.Sub a b (combine_ty a b))

let mul_expr a b =
  Vpc_analysis.Simplify.expr (Expr.binop Expr.Mul a b (combine_ty a b))

let lin_add x y =
  { self_coef = x.self_coef + y.self_coef;
    base = add_expr x.base y.base;
    kcoef = add_expr x.kcoef y.kcoef }

let lin_sub x y =
  { self_coef = x.self_coef - y.self_coef;
    base = sub_expr x.base y.base;
    kcoef = sub_expr x.kcoef y.kcoef }

let lin_scale c x =
  {
    self_coef = (match c.Expr.desc with Expr.Const_int n -> n * x.self_coef | _ -> 0);
    base = mul_expr c x.base;
    kcoef = mul_expr c x.kcoef;
  }

(* Is [e] invariant in this loop body?  Reads only vars with no defs in
   the body that are not tainted-by-memory; loads only if the body writes
   no memory. *)
let invariant env (e : Expr.t) =
  (not (Expr.contains_load e) || not env.mem_written)
  && List.for_all
       (fun v ->
         (not (Hashtbl.mem env.defs_of v))
         && (not (Hashtbl.mem env.tainted v))
         && v <> env.index_var)
       (Expr.read_vars e)

(* Sum of deltas of IV [info] applied before top-level position [pos]. *)
let partial_delta info pos =
  List.fold_left
    (fun acc (p, d) -> if p < pos then add_expr acc d else acc)
    zero info.update_positions

(* Value of IV [v] as a lin form at top-level position [pos]. *)
let iv_value env info pos =
  let init =
    match info.init_var with
    | Some v -> v
    | None ->
        let b = Builder.ctx env.prog env.func in
        let v =
          Builder.fresh_temp b
            ~name:(Printf.sprintf "%s_init" info.iv_var.Var.name)
            info.iv_var.Var.ty
        in
        info.init_var <- Some v;
        v
  in
  {
    self_coef = 0;
    base = add_expr (Expr.var init) (partial_delta info pos);
    kcoef = info.total_delta;
  }

(* Linearize expression [e] appearing at top-level position [pos], with
   reads of [self] kept symbolic.  [depth] bounds chain recursion. *)
let rec linearize env ~self ~pos ~depth (e : Expr.t) : outcome =
  if invariant env e then Lin (lin_const e)
  else
    match e.Expr.desc with
    | Expr.Const_int _ | Expr.Const_float _ | Expr.Addr_of _ ->
        Lin (lin_const e)
    | Expr.Var v when v = self -> Lin { self_coef = 1; base = zero; kcoef = zero }
    | Expr.Var v when v = env.index_var ->
        Lin { self_coef = 0; base = zero; kcoef = Expr.int_const 1 }
    | Expr.Var v -> linearize_var env ~self ~pos ~depth v
    | Expr.Binop (Expr.Add, a, b) -> (
        match linearize env ~self ~pos ~depth a, linearize env ~self ~pos ~depth b with
        | Lin x, Lin y -> Lin (lin_add x y)
        | Blocked, _ | _, Blocked -> Blocked
        | _ -> Fail)
    | Expr.Binop (Expr.Sub, a, b) -> (
        match linearize env ~self ~pos ~depth a, linearize env ~self ~pos ~depth b with
        | Lin x, Lin y -> Lin (lin_sub x y)
        | Blocked, _ | _, Blocked -> Blocked
        | _ -> Fail)
    | Expr.Binop (Expr.Mul, a, b) when invariant env a -> (
        match linearize env ~self ~pos ~depth b with
        | Lin y -> Lin (lin_scale a y)
        | other -> other)
    | Expr.Binop (Expr.Mul, a, b) when invariant env b -> (
        match linearize env ~self ~pos ~depth a with
        | Lin x -> Lin (lin_scale b x)
        | other -> other)
    | Expr.Cast (ty, a) when Ty.is_integer ty || Ty.is_pointer ty -> (
        (* integer/pointer casts preserve linearity on our target *)
        match linearize env ~self ~pos ~depth a with
        | Lin x when x.self_coef = 0 ->
            Lin { x with base = Expr.cast ty x.base }
        | other -> other)
    | _ -> Fail

(* A read of in-body-defined variable [v] at position [pos]. *)
and linearize_var env ~self ~pos ~depth v : outcome =
  if depth > 64 then Fail
  else if Hashtbl.mem env.tainted v then Fail
  else
    match List.assoc_opt v env.ivs with
    | Some info -> Lin (iv_value env info pos)
    | None -> (
        match Hashtbl.find_opt env.defs_of v with
        | None | Some [] -> Lin (lin_const (Expr.var_id v Ty.Int))
        | Some [ def_pos ] when def_pos < pos -> (
            (* single def before the use: substitute its RHS through,
               provided the vars that RHS reads are not redefined between
               def_pos and pos — when they are, the statement is blocked
               until those redefinitions are themselves substituted (the
               paper's blocking relation). *)
            match Hashtbl.find_opt env.resolved def_pos with
            | Some l when l.self_coef = 0 -> Lin l
            | _ -> (
                match env.top.(def_pos).Stmt.desc with
                | Stmt.Assign (Stmt.Lvar _, rhs) -> (
                    let redefined_between w =
                      match Hashtbl.find_opt env.defs_of w with
                      | None -> false
                      | Some poss ->
                          List.exists (fun p -> p > def_pos && p < pos) poss
                    in
                    let blocked_var =
                      List.find_opt
                        (fun w ->
                          w <> self && redefined_between w
                          && not (List.mem_assoc w env.ivs))
                        (Expr.read_vars rhs)
                    in
                    match blocked_var with
                    | Some _ -> Blocked
                    | None ->
                        (* the temp captured its RHS's value at def_pos, so
                           linearize there; the result may be linear in
                           [self] (that is what temp chains carry) *)
                        linearize env ~self ~pos:def_pos ~depth:(depth + 1) rhs)
                | _ -> Fail))
        | Some _ -> Fail)

(* ----------------------------------------------------------------- *)
(* IV recognition                                                    *)
(* ----------------------------------------------------------------- *)

(* Try to classify variable [v]: every top-level def must linearize to
   SELF + delta with delta invariant. *)
let classify_iv env v positions : (iv_info, outcome) result =
  let deltas =
    List.map
      (fun pos ->
        match env.top.(pos).Stmt.desc with
        | Stmt.Assign (Stmt.Lvar _, rhs) -> (
            match linearize env ~self:v ~pos ~depth:0 rhs with
            | Lin { self_coef = 1; base; kcoef } when Expr.is_zero kcoef ->
                Ok (pos, base)
            | Lin _ -> Error Fail
            | other -> Error other)
        | _ -> Error Fail)
      positions
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | Ok d :: rest -> collect (d :: acc) rest
    | Error o :: _ -> Error o
  in
  match collect [] deltas with
  | Error o -> Error o
  | Ok update_positions ->
      let total_delta =
        List.fold_left (fun acc (_, d) -> add_expr acc d) zero update_positions
      in
      let iv_var =
        match Func.find_var env.func v with
        | Some var -> var
        | None -> Var.make ~id:v ~name:(Printf.sprintf "v%d" v) ~ty:Ty.Int ()
      in
      Ok { iv_var; total_delta; update_positions; init_var = None }

(* ----------------------------------------------------------------- *)
(* Per-loop driver                                                   *)
(* ----------------------------------------------------------------- *)

let build_env prog (func : Func.t) (d : Stmt.do_loop) : loop_env =
  let top = Array.of_list d.body in
  let pos_of_stmt = Hashtbl.create 16 in
  Array.iteri (fun i s -> Hashtbl.replace pos_of_stmt s.Stmt.id i) top;
  let defs_of = Hashtbl.create 16 in
  let tainted = Hashtbl.create 8 in
  let mem_written = ref false in
  let taint v = Hashtbl.replace tainted v () in
  (* address-taken / global / volatile vars are unsafe *)
  let unsafe = Func.addressed_vars func in
  Array.iteri
    (fun i s ->
      (match s.Stmt.desc with
      | Stmt.Assign (Stmt.Lvar v, _) ->
          Hashtbl.replace defs_of v
            (Option.value (Hashtbl.find_opt defs_of v) ~default:[] @ [ i ])
      | Stmt.Call (Some (Stmt.Lvar v), _, _) -> taint v
      | _ -> ());
      Stmt.iter
        (fun inner ->
          (match inner.Stmt.desc with
          | Stmt.Assign (Stmt.Lmem _, _) | Stmt.Vector _ -> mem_written := true
          | Stmt.Call _ ->
              mem_written := true;
              (* calls can change any unsafe variable *)
              Hashtbl.iter (fun v () -> taint v) unsafe
          | _ -> ());
          if inner.Stmt.id <> s.Stmt.id then
            match Vpc_analysis.Reaching.strong_def_of inner with
            | Some (v, _) -> taint v  (* defined in nested position *)
            | None -> ())
        s)
    top;
  (* unsafe vars are tainted when memory is written in the body *)
  Hashtbl.iter (fun v () -> if !mem_written then taint v) unsafe;
  Hashtbl.iter
    (fun v _ ->
      match Prog.find_var prog (Some func) v with
      | Some var ->
          if var.volatile then taint v;
          if Var.is_global var && !mem_written then taint v
      | None -> taint v)
    defs_of;
  (* volatile reads must be neither moved nor duplicated: taint every
     volatile variable the body mentions, even read-only ones *)
  Array.iter
    (fun s ->
      Stmt.iter
        (fun s ->
          List.iter
            (fun e ->
              List.iter
                (fun v ->
                  match Prog.find_var prog (Some func) v with
                  | Some var -> if var.Var.volatile then taint v
                  | None -> taint v)
                (Expr.read_vars e))
            (Stmt.shallow_exprs s))
        s)
    top;
  {
    prog;
    func;
    top;
    pos_of_stmt;
    defs_of;
    tainted;
    mem_written = !mem_written;
    index_var = d.index;
    ivs = [];
    resolved = Hashtbl.create 8;
  }

let is_normalized (d : Stmt.do_loop) =
  Expr.is_zero d.lo
  && (match d.step.Expr.desc with Expr.Const_int 1 -> true | _ -> false)

(* Run recognition passes until fixpoint, then rewrite. *)
let process_loop stats prog func (loop_stmt : Stmt.t) (d : Stmt.do_loop) :
    Stmt.t list option =
  if not (is_normalized d) then None
  else begin
    stats.loops_processed <- stats.loops_processed + 1;
    let env = build_env prog func d in
    (* --- recognition passes (the §5.3 heuristic) --- *)
    let local_passes = ref 0 in
    let progress = ref true in
    let blocked_last_pass = ref 0 in
    while !progress && !local_passes < Array.length env.top + 2 do
      incr local_passes;
      stats.passes <- stats.passes + 1;
      progress := false;
      blocked_last_pass := 0;
      (* 1. try to recognize new IVs, in ascending var-id order so the
         recognition (and hence substitution) order never depends on
         hash-bucket layout *)
      List.iter
        (fun (v, positions) ->
          if
            (not (Hashtbl.mem env.tainted v))
            && (not (List.mem_assoc v env.ivs))
            && v <> env.index_var
          then
            match classify_iv env v positions with
            | Ok info ->
                env.ivs <- (v, info) :: env.ivs;
                stats.ivs_found <- stats.ivs_found + 1;
                progress := true
            | Error Blocked ->
                incr blocked_last_pass;
                stats.blocked_events <- stats.blocked_events + 1
            | Error _ -> ())
        (Hashtbl.fold (fun v ps acc -> (v, ps) :: acc) env.defs_of []
        |> List.sort (fun (a, _) (b, _) -> compare a b));
      (* 2. try to resolve single-def temps to closed forms *)
      Array.iteri
        (fun pos s ->
          if not (Hashtbl.mem env.resolved pos) then
            match s.Stmt.desc with
            | Stmt.Assign (Stmt.Lvar v, rhs)
              when (not (Hashtbl.mem env.tainted v))
                   && (match Hashtbl.find_opt env.defs_of v with
                      | Some [ p ] -> p = pos
                      | _ -> false) -> (
                match linearize env ~self:v ~pos ~depth:0 rhs with
                | Lin l when l.self_coef = 0 ->
                    Hashtbl.replace env.resolved pos l;
                    progress := true
                | Lin _ -> ()
                | Blocked ->
                    incr blocked_last_pass;
                    stats.blocked_events <- stats.blocked_events + 1
                | Fail -> ())
            | _ -> ())
        env.top
    done;
    stats.max_passes_one_loop <- max stats.max_passes_one_loop !local_passes;
    if env.ivs = [] then None
    else begin
      (* --- rewrite --- *)
      let k_read = Expr.var_id d.index Ty.Int in
      let lin_to_expr (l : lin) ty =
        let k_term =
          if Expr.is_zero l.kcoef then zero
          else mul_expr l.kcoef k_read
        in
        let e = add_expr l.base k_term in
        Expr.cast ty e
      in
      let rewrite_at pos (e : Expr.t) =
        Expr.map
          (fun e ->
            match e.Expr.desc with
            | Expr.Var v when v <> env.index_var -> (
                match List.assoc_opt v env.ivs with
                | Some info ->
                    stats.substitutions <- stats.substitutions + 1;
                    lin_to_expr (iv_value env info pos) e.Expr.ty
                | None -> (
                    (* resolved temp read after its def *)
                    match Hashtbl.find_opt env.defs_of v with
                    | Some [ def_pos ] when def_pos < pos -> (
                        match Hashtbl.find_opt env.resolved def_pos with
                        | Some l ->
                            stats.substitutions <- stats.substitutions + 1;
                            lin_to_expr l e.Expr.ty
                        | None -> e)
                    | _ -> e))
            | _ -> e)
          e
      in
      let new_body =
        List.mapi
          (fun pos s ->
            let rewrite e = Vpc_analysis.Simplify.expr (rewrite_at pos e) in
            let rec deep (s : Stmt.t) =
              let s = Stmt.map_exprs_shallow rewrite s in
              match s.Stmt.desc with
              | Stmt.If (c, t, e) ->
                  { s with desc = Stmt.If (c, List.map deep t, List.map deep e) }
              | Stmt.While (li, c, b) ->
                  { s with desc = Stmt.While (li, c, List.map deep b) }
              | Stmt.Do_loop dd ->
                  { s with desc = Stmt.Do_loop { dd with body = List.map deep dd.body } }
              | _ -> s
            in
            deep s)
          d.body
      in
      (* preheader init copies for the IVs whose init vars were needed *)
      let b = Builder.ctx prog func in
      let inits =
        List.filter_map
          (fun (_, info) ->
            match info.init_var with
            | Some init -> Some (Builder.assign b init (Expr.var info.iv_var))
            | None -> None)
          (List.rev env.ivs)
      in
      Some
        (inits
        @ [ { loop_stmt with Stmt.desc = Stmt.Do_loop { d with body = new_body } } ])
    end
  end

(* Apply to every normalized DO loop in the function (outermost first; the
   rewritten loop is not revisited). *)
let run ?(stats = new_stats ()) (prog : Prog.t) (func : Func.t) =
  let changed = ref false in
  let rec walk stmts = List.concat_map walk_stmt stmts
  and walk_stmt (s : Stmt.t) : Stmt.t list =
    match s.Stmt.desc with
    | Stmt.Do_loop d -> (
        let d = { d with body = walk d.body } in
        let s = { s with Stmt.desc = Stmt.Do_loop d } in
        match process_loop stats prog func s d with
        | Some replacement ->
            changed := true;
            replacement
        | None -> [ s ])
    | Stmt.If (c, t, e) -> [ { s with desc = Stmt.If (c, walk t, walk e) } ]
    | Stmt.While (li, c, b) -> [ { s with desc = Stmt.While (li, c, walk b) } ]
    | _ -> [ s ]
  in
  func.Func.body <- walk func.Func.body;
  !changed
