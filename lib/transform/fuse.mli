(** Loop fusion (paper §7): merge adjacent conformable DO loops (flat
    loops or whole nests) into one loop when no fusion-preventing
    dependence exists — no conflict between the two bodies with a
    lexicographically negative direction vector — and the Titan cost
    model finds the fused nest cheaper than the pair. *)

open Vpc_il

type options = {
  assume_noalias : bool;
  parallelize : bool;
  vlen : int;
  profile : Vpc_profile.Data.t option;
  report : (string -> unit) option;
  tune : (Vpc_support.Loc.t -> bool option) option;
      (** autotuned per-nest gate, keyed by either loop's head location:
          [Some false] keeps the pair separate, [Some true] fuses a
          legal pair even when the cost model prefers them apart;
          [None] follows the static policy *)
}

val default_options : options

type stats = {
  mutable pairs_examined : int;
  mutable loops_fused : int;
  mutable rejected_conformability : int;
  mutable rejected_dependence : int;
  mutable rejected_cost : int;
}

val new_stats : unit -> stats
val run : ?options:options -> ?stats:stats -> Prog.t -> Func.t -> bool
