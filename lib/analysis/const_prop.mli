(** Constant propagation with unreachable-code elimination (paper §8).

    Constants include address constants.  When an [if] condition folds,
    the dead arm is spliced out and the analysis re-runs — subsuming the
    paper's requeue heuristic ("all constant assignments whose
    definitions can reach any statement in this list are then added to
    the heap for another round") at some compile-time cost. *)

open Vpc_il

type stats = {
  mutable substitutions : int;
  mutable branches_folded : int;
  mutable loops_deleted : int;   (** zero-trip loops removed *)
  mutable stmts_removed : int;
  mutable range_folds : int;
      (** branches decided by value ranges, not literal constants *)
}

val new_stats : unit -> stats

(** Run to fixpoint on one function; returns [true] if anything changed.

    [range s cond] may return a truth value the symbolic range analysis
    proves for [cond] at statement [s]: comparisons whose operands have
    disjoint ranges fold even when neither side is a literal constant
    (the loop-bound guards the lowerer emits for constant-bound loops,
    typically).  Must be sound — a [Some] answer deletes the other arm. *)
val run :
  ?stats:stats ->
  ?range:(Stmt.t -> Expr.t -> bool option) ->
  Prog.t ->
  Func.t ->
  bool
