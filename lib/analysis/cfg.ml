(* Control-flow graph over the structured IL ("the control flow graph
   built for scalar analysis", §5.2).  Each leaf statement is a node; an
   [If]/[While]/[Do_loop] statement is a node representing its condition
   evaluation.  Two synthetic nodes, [entry] and [exit_], bracket the
   function. *)

open Vpc_support
open Vpc_il

let entry_id = -1
let exit_id = -2

type node = {
  stmt : Stmt.t option;  (* None for entry/exit *)
  mutable succs : int list;
  mutable preds : int list;
}

type t = {
  nodes : (int, node) Hashtbl.t;
  func : Func.t;
  mutable rpo : int list;  (* reverse postorder from entry *)
}

let node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> Diag.internal "cfg: unknown node %d" id

let stmt_of t id = (node t id).stmt

let succs t id = (node t id).succs
let preds t id = (node t id).preds

let add_edge t a b =
  let na = node t a and nb = node t b in
  if not (List.mem b na.succs) then na.succs <- b :: na.succs;
  if not (List.mem a nb.preds) then nb.preds <- a :: nb.preds

(* First node of a statement list, or [next] if the list is empty. *)
let rec list_entry stmts next =
  match stmts with
  | [] -> next
  | s :: rest -> (
      match s.Stmt.desc with
      | Stmt.Nop -> list_entry rest next  (* Nops are not CFG nodes *)
      | _ -> s.Stmt.id)

let build (func : Func.t) : t =
  let t = { nodes = Hashtbl.create 64; func; rpo = [] } in
  Hashtbl.replace t.nodes entry_id { stmt = None; succs = []; preds = [] };
  Hashtbl.replace t.nodes exit_id { stmt = None; succs = []; preds = [] };
  (* Register all non-Nop statements as nodes. *)
  Stmt.iter_list
    (fun s ->
      match s.Stmt.desc with
      | Stmt.Nop -> ()
      | _ -> Hashtbl.replace t.nodes s.Stmt.id { stmt = Some s; succs = []; preds = [] })
    func.Func.body;
  (* Label name -> node id *)
  let labels = Hashtbl.create 8 in
  Stmt.iter_list
    (fun s ->
      match s.Stmt.desc with
      | Stmt.Label l -> Hashtbl.replace labels l s.Stmt.id
      | _ -> ())
    func.Func.body;
  let label_target l =
    match Hashtbl.find_opt labels l with
    | Some id -> id
    | None -> Diag.internal "cfg: goto to unknown label %s" l
  in
  (* Wire edges.  [next] is the node that control reaches after the
     statement (list) completes normally. *)
  let rec wire_list stmts next =
    match stmts with
    | [] -> ()
    | s :: rest ->
        let following = list_entry rest next in
        wire_stmt s following;
        wire_list rest next
  and wire_stmt (s : Stmt.t) next =
    match s.Stmt.desc with
    | Stmt.Nop -> ()
    | Stmt.Assign _ | Stmt.Call _ | Stmt.Label _ | Stmt.Vector _ | Stmt.Vdef _
      ->
        add_edge t s.id next
    | Stmt.Goto l -> add_edge t s.id (label_target l)
    | Stmt.Return _ -> add_edge t s.id exit_id
    | Stmt.If (_, then_, else_) ->
        add_edge t s.id (list_entry then_ next);
        add_edge t s.id (list_entry else_ next);
        wire_list then_ next;
        wire_list else_ next
    | Stmt.While (_, _, body) ->
        add_edge t s.id (list_entry body s.id);
        add_edge t s.id next;
        wire_list body s.id
    | Stmt.Do_loop d ->
        add_edge t s.id (list_entry d.body s.id);
        add_edge t s.id next;
        wire_list d.body s.id
  in
  add_edge t entry_id (list_entry func.Func.body exit_id);
  wire_list func.Func.body exit_id;
  (* Reverse postorder. *)
  let visited = Hashtbl.create 64 in
  let order = ref [] in
  let rec dfs id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.replace visited id ();
      List.iter dfs (node t id).succs;
      order := id :: !order
    end
  in
  dfs entry_id;
  t.rpo <- !order;
  t

(* Nodes reachable from entry, as a set. *)
let reachable t =
  let set = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace set id ()) t.rpo;
  set

let iter_rpo f t = List.iter (fun id -> f id (node t id)) t.rpo

(* All statement ids inside a statement subtree (including itself). *)
let subtree_ids (s : Stmt.t) =
  let acc = ref [] in
  Stmt.iter (fun s -> acc := s.Stmt.id :: !acc) s;
  !acc

(* Does any goto outside [body] target a label inside it?  Needed by
   while→DO conversion ("branches are entering the loop", §5.2), and the
   dual: does [body] branch out (break/goto/return)? *)
let labels_in stmts =
  let set = Hashtbl.create 4 in
  List.iter
    (fun s ->
      Stmt.iter
        (fun s ->
          match s.Stmt.desc with
          | Stmt.Label l -> Hashtbl.replace set l ()
          | _ -> ())
        s)
    stmts;
  set

let has_branch_into (func : Func.t) (body : Stmt.t list) =
  let inside = labels_in body in
  let inside_ids = Hashtbl.create 16 in
  List.iter
    (fun s -> Stmt.iter (fun s -> Hashtbl.replace inside_ids s.Stmt.id ()) s)
    body;
  let found = ref false in
  Stmt.iter_list
    (fun s ->
      match s.Stmt.desc with
      | Stmt.Goto l
        when Hashtbl.mem inside l && not (Hashtbl.mem inside_ids s.Stmt.id) ->
          found := true
      | _ -> ())
    func.Func.body;
  !found

let has_branch_out_of (body : Stmt.t list) =
  let inside = labels_in body in
  let found = ref false in
  List.iter
    (fun s ->
      Stmt.iter
        (fun s ->
          match s.Stmt.desc with
          | Stmt.Goto l when not (Hashtbl.mem inside l) -> found := true
          | Stmt.Return _ -> found := true
          | _ -> ())
        s)
    body;
  !found
