(* Constant propagation with unreachable-code elimination (paper §8).

   Constants include address constants (&a, &a + 12): §9's daxpy example
   depends on propagating them into subscript positions.  When an [if]
   condition folds to a constant the dead arm is spliced out and the
   whole analysis re-runs — this subsumes the paper's requeue heuristic
   ("all constant assignments whose definitions can reach any statement in
   this list are then added to the heap for another round") by re-examining
   every statement, trading a little compile time for simplicity. *)

open Vpc_il

type stats = {
  mutable substitutions : int;
  mutable branches_folded : int;
  mutable loops_deleted : int;
  mutable stmts_removed : int;
  mutable range_folds : int;
      (* branches decided by value ranges, not literal constants *)
}

let new_stats () =
  {
    substitutions = 0;
    branches_folded = 0;
    loops_deleted = 0;
    stmts_removed = 0;
    range_folds = 0;
  }

(* One substitution pass: returns true if anything changed. *)
let substitute_pass (prog : Prog.t) (func : Func.t) stats =
  let ud = Reaching.build ~prog func in
  let changed = ref false in
  let subst_in_stmt (s : Stmt.t) =
    let rewrite (e : Expr.t) =
      Expr.map
        (fun e ->
          match e.Expr.desc with
          | Expr.Var v -> (
              match Reaching.reaching ud ~stmt_id:s.Stmt.id ~var:v with
              | Reaching.Unknown -> e
              | Reaching.Defs [] -> e
              | Reaching.Defs (d0 :: rest) -> (
                  match d0.Reaching.d_value with
                  | Some value
                    when Simplify.is_propagation_constant value
                         && List.for_all
                              (fun d ->
                                match d.Reaching.d_value with
                                | Some v2 -> Expr.equal value v2
                                | None -> false)
                              rest ->
                      changed := true;
                      stats.substitutions <- stats.substitutions + 1;
                      Expr.cast e.Expr.ty value
                  | _ -> e))
          | _ -> e)
        e
    in
    let s' = Stmt.map_exprs_shallow rewrite s in
    Simplify.stmt_exprs_simplify s'
  in
  let rec walk stmts = List.map walk_stmt stmts
  and walk_stmt (s : Stmt.t) =
    let s = subst_in_stmt s in
    match s.Stmt.desc with
    | Stmt.If (c, t, e) -> { s with desc = Stmt.If (c, walk t, walk e) }
    | Stmt.While (li, c, body) -> { s with desc = Stmt.While (li, c, walk body) }
    | Stmt.Do_loop d -> { s with desc = Stmt.Do_loop { d with body = walk d.body } }
    | _ -> s
  in
  func.Func.body <- walk func.Func.body;
  !changed

let count_stmts stmts =
  let n = ref 0 in
  Stmt.iter_list (fun _ -> incr n) stmts;
  !n

(* Fold branches whose conditions are now constant, and loops proven to
   run zero times.  Statements containing labels cannot be deleted safely
   if the label is a goto target elsewhere, so we check. *)
let fold_pass ?range (func : Func.t) stats =
  (* [range s cond]: a truth value for [cond] at statement [s] that the
     symbolic range analysis can prove — comparisons whose operands have
     disjoint known ranges fold even when neither side is a literal
     constant (the loop-bound guards the lowerer emits, typically). *)
  let range_truth (s : Stmt.t) (c : Expr.t) =
    match range with None -> None | Some f -> f s c
  in
  let changed = ref false in
  (* collect goto targets *)
  let targets = Hashtbl.create 8 in
  Stmt.iter_list
    (fun s ->
      match s.Stmt.desc with
      | Stmt.Goto l -> Hashtbl.replace targets l ()
      | _ -> ())
    func.Func.body;
  let deletable stmts =
    let ok = ref true in
    List.iter
      (fun s ->
        Stmt.iter
          (fun s ->
            match s.Stmt.desc with
            | Stmt.Label l when Hashtbl.mem targets l -> ok := false
            | _ -> ())
          s)
      stmts;
    !ok
  in
  let rec walk stmts = List.concat_map walk_stmt stmts
  and walk_stmt (s : Stmt.t) : Stmt.t list =
    match s.Stmt.desc with
    | Stmt.If (c, then_, else_) -> (
        let decided =
          match Simplify.const_truth c with
          | Some _ as t -> t
          | None -> (
              match range_truth s c with
              | Some _ as t ->
                  stats.range_folds <- stats.range_folds + 1;
                  t
              | None -> None)
        in
        match decided with
        | Some truth ->
            let live = if truth then then_ else else_ in
            let dead = if truth then else_ else then_ in
            if deletable dead then begin
              changed := true;
              stats.branches_folded <- stats.branches_folded + 1;
              stats.stmts_removed <- stats.stmts_removed + count_stmts dead;
              walk live
            end
            else [ { s with desc = Stmt.If (c, walk then_, walk else_) } ]
        | None -> [ { s with desc = Stmt.If (c, walk then_, walk else_) } ])
    | Stmt.While (li, c, body) -> (
        match Simplify.const_truth c with
        | Some false when deletable body ->
            changed := true;
            stats.loops_deleted <- stats.loops_deleted + 1;
            stats.stmts_removed <- stats.stmts_removed + count_stmts body;
            []
        | _ -> [ { s with desc = Stmt.While (li, c, walk body) } ])
    | Stmt.Do_loop d -> (
        let zero_trip =
          match d.lo.Expr.desc, d.hi.Expr.desc, d.step.Expr.desc with
          | Expr.Const_int lo, Expr.Const_int hi, Expr.Const_int step ->
              (step >= 0 && lo > hi) || (step < 0 && lo < hi)
          | _ -> false
        in
        match zero_trip with
        | true when deletable d.body ->
            changed := true;
            stats.loops_deleted <- stats.loops_deleted + 1;
            stats.stmts_removed <- stats.stmts_removed + count_stmts d.body;
            (* the loop still assigns its index the initial value *)
            [ { s with desc = Stmt.Assign (Stmt.Lvar d.index, d.lo) } ]
        | _ -> [ { s with desc = Stmt.Do_loop { d with body = walk d.body } } ])
    | _ -> [ s ]
  in
  func.Func.body <- walk func.Func.body;
  !changed

let max_rounds = 25

let run ?(stats = new_stats ()) ?range (prog : Prog.t) (func : Func.t) =
  let any = ref false in
  let rec go round =
    if round < max_rounds then begin
      let s = substitute_pass prog func stats in
      let f = fold_pass ?range func stats in
      if s || f then begin
        any := true;
        go (round + 1)
      end
    end
  in
  go 0;
  !any
