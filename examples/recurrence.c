double a[4200];
int main() {
  int i;
  double t, p;
  for (i = 0; i < 8; i = i + 1)
    a[i] = 0.25 + (double)i * 0.0625;
  for (i = 0; i < 4096; i++) {
    t = a[i];
    p = (t * 0.5 + 1.0) * (t - 0.25) + (t * t) * 0.125;
    p = p * (t * 0.0625 - 2.0) + (t + 3.0) * 0.75;
    a[i + 8] = p * 0.125 + t * 0.875;
  }
  printf("a[2048]=%g a[4103]=%g\n", a[2048], a[4103]);
  return 0;
}
