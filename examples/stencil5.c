/* Five-point stencil followed by a residual pass over the same arrays.
   The two nests are conformable and only (=,=)-dependent, so the fusion
   pass (§7) merges them; the fused body then vectorizes as one shared
   strip loop — one length computation and one barrier for both stores
   (see stencil5.ml). */
double in[34][64];
double out[34][64];
double diff[34][64];

int main()
{
  int i, j;
  for (i = 0; i < 34; i = i + 1)
    for (j = 0; j < 64; j = j + 1)
      in[i][j] = (double)(i * i + 3 * j) * 0.5;
  for (i = 1; i < 33; i = i + 1)
    for (j = 1; j < 63; j = j + 1)
      out[i][j] = 0.2 * (in[i][j] + in[i-1][j] + in[i+1][j] + in[i][j-1] + in[i][j+1]);
  for (i = 1; i < 33; i = i + 1)
    for (j = 1; j < 63; j = j + 1)
      diff[i][j] = out[i][j] - in[i][j];
  printf("out[16][32]=%g diff[11][21]=%g\n", out[16][32], diff[11][21]);
  return 0;
}
