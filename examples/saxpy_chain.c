/* A chain of saxpy-like passes over the same vectors.  The four
   conformable loops fuse into one nest, the fused body vectorizes as a
   single shared strip loop, and the vector-register reuse pass then
   keeps the chain in registers: the store of x forwards straight to the
   three later statements that read x[i] (one Vload shared instead of
   three), and the stores of y and z forward to the statements consuming
   them — per strip, the memory port sees one load of the coefficient
   pattern and the final stores instead of ten references (see
   saxpy_chain.ml for the measured cycles with reuse on and off). */
double x[2048];
double y[2048];
double z[2048];
double w[2048];

int main()
{
  int i;
  for (i = 0; i < 2048; i = i + 1)
    x[i] = (double)(3 * i) * 0.125;
  for (i = 0; i < 2048; i = i + 1)
    y[i] = 2.0 * x[i] + 1.0;
  for (i = 0; i < 2048; i = i + 1)
    z[i] = 3.0 * x[i] + y[i];
  for (i = 0; i < 2048; i = i + 1)
    w[i] = z[i] - x[i];
  printf("y[777]=%g z[1024]=%g w[2047]=%g\n", y[777], z[1024], w[2047]);
  return 0;
}
