(* Interchange neutrality: transposing is legal to reorder but neither
   order beats the other (one long-stride reference either way), so the
   pass keeps the source order.

     dune exec examples/transpose.exe *)

let source =
  {|
double a[32][64];
double b[64][32];

int main()
{
  int i, j;
  for (i = 0; i < 32; i = i + 1)
    for (j = 0; j < 64; j = j + 1)
      a[i][j] = (double)(i + 2 * j) * 0.5;
  for (i = 0; i < 32; i = i + 1)
    for (j = 0; j < 64; j = j + 1)
      b[j][i] = a[i][j];
  printf("b[32][16]=%g\n", b[32][16]);
  return 0;
}
|}

let () =
  let report = Some (fun line -> Printf.printf "[report] %s\n" line) in
  let _, stats = Vpc.compile ~options:{ Vpc.o3 with Vpc.report = report } source in
  Printf.printf "nests interchanged: %d (expected 0 — no profitable order)\n"
    stats.Vpc.interchange.nests_interchanged
