double u[8400];
int main() {
  int k;
  double s, q, r, w;
  for (k = 0; k < 64; k = k + 1)
    u[k] = 0.25 + (double)k * 0.015625;
  for (k = 0; k < 8192; k++) {
    s = u[k] * 0.3 + u[k + 1] * 0.3;
    q = u[k] * u[k + 1];
    r = q * (1.0 - q * 0.5) * 0.02 + s;
    w = q * (0.5 + q * 0.25) * 0.015625;
    u[k + 64] = u[k + 64] * 0.35 + r + w + 0.05;
  }
  printf("u[4096]=%.15g u[8255]=%.15g\n", u[4096], u[8255]);
  return 0;
}
