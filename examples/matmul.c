/* Matrix multiply in the textbook i,j,k order (the recurrence on
   c[i][j] innermost).  The interchange pass (§7) reorders the nest when
   the Titan's cost model finds a cheaper legal order — see matmul.ml
   for the reported decision. */
double a[48][96];
double b[96][96];
double c[48][96];

int main()
{
  int i, j, k;
  for (i = 0; i < 48; i = i + 1)
    for (k = 0; k < 96; k = k + 1)
      a[i][k] = (double)(i + 2 * k) * 0.5;
  for (k = 0; k < 96; k = k + 1)
    for (j = 0; j < 96; j = j + 1)
      b[k][j] = (double)(k + 3 * j) * 0.25;
  for (i = 0; i < 48; i = i + 1)
    for (j = 0; j < 96; j = j + 1)
      for (k = 0; k < 96; k = k + 1)
        c[i][j] = c[i][j] + a[i][k] * b[k][j];
  printf("c[24][48]=%g\n", c[24][48]);
  return 0;
}
