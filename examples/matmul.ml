(* Loop interchange on matrix multiply: compile with --report wired up to
   see the §7 nest-restructuring decision, then measure both orders.

     dune exec examples/matmul.exe *)

let source =
  {|
double a[48][96];
double b[96][96];
double c[48][96];

int main()
{
  int i, j, k;
  for (i = 0; i < 48; i = i + 1)
    for (k = 0; k < 96; k = k + 1)
      a[i][k] = (double)(i + 2 * k) * 0.5;
  for (k = 0; k < 96; k = k + 1)
    for (j = 0; j < 96; j = j + 1)
      b[k][j] = (double)(k + 3 * j) * 0.25;
  for (i = 0; i < 48; i = i + 1)
    for (j = 0; j < 96; j = j + 1)
      for (k = 0; k < 96; k = k + 1)
        c[i][j] = c[i][j] + a[i][k] * b[k][j];
  printf("c[24][48]=%g\n", c[24][48]);
  return 0;
}
|}

let () =
  (* a profile measured on the 4-processor machine tells the cost model
     that parallel vector strips are available, which is what makes the
     reordered nest win; the static model on one processor keeps the
     scalar order *)
  let config = { Vpc.Titan.Machine.default_config with procs = 4 } in
  let profile, _ = Vpc.profile_gen ~config source in
  let compile interchange =
    let options =
      {
        Vpc.o3 with
        Vpc.interchange;
        profile = Some profile;
        report =
          (if interchange then
             Some (fun line -> Printf.printf "  [report] %s\n" line)
           else None);
      }
    in
    Vpc.compile ~options source
  in
  print_endline "=== interchange decision (profile measured at procs=4) ===";
  let prog_on, stats = compile true in
  Printf.printf "  nests interchanged: %d\n\n"
    stats.Vpc.interchange.nests_interchanged;
  let prog_off, _ = compile false in
  let cycles p = (Vpc.run_titan ~config p).Vpc.Titan.Machine.metrics.cycles in
  let off = cycles prog_off and on = cycles prog_on in
  Printf.printf "=== 4-processor run ===\n";
  Printf.printf "  source order:      %d cycles\n" off;
  Printf.printf "  interchanged:      %d cycles (%.2fx)\n" on
    (float_of_int off /. float_of_int on)
