(* Loop fusion on a stencil + residual pair: the two conformable nests
   merge and their stores share one vector strip loop.

     dune exec examples/stencil5.exe *)

let source =
  {|
double in[34][64];
double out[34][64];
double diff[34][64];

int main()
{
  int i, j;
  for (i = 0; i < 34; i = i + 1)
    for (j = 0; j < 64; j = j + 1)
      in[i][j] = (double)(i * i + 3 * j) * 0.5;
  for (i = 1; i < 33; i = i + 1)
    for (j = 1; j < 63; j = j + 1)
      out[i][j] = 0.2 * (in[i][j] + in[i-1][j] + in[i+1][j] + in[i][j-1] + in[i][j+1]);
  for (i = 1; i < 33; i = i + 1)
    for (j = 1; j < 63; j = j + 1)
      diff[i][j] = out[i][j] - in[i][j];
  printf("out[16][32]=%g diff[11][21]=%g\n", out[16][32], diff[11][21]);
  return 0;
}
|}

let () =
  let config = { Vpc.Titan.Machine.default_config with procs = 4 } in
  let compile fuse =
    Vpc.compile ~options:{ Vpc.o3 with Vpc.fuse } source
  in
  let prog_on, stats = compile true in
  let prog_off, _ = compile false in
  Printf.printf "loops fused: %d, strip loops shared: %d\n"
    stats.Vpc.fuse.loops_fused stats.Vpc.vectorize.strip_loops_shared;
  let cycles p = (Vpc.run_titan ~config p).Vpc.Titan.Machine.metrics.cycles in
  let off = cycles prog_off and on = cycles prog_on in
  Printf.printf "separate nests: %d cycles\nfused:          %d cycles (%.2fx)\n"
    off on
    (float_of_int off /. float_of_int on)
