(* Symbolic range analysis on kernels with parameter-dependent bounds
   and offsets: [shift] and [smooth] write [a[i]] while reading
   [a[i+k]], so the canonical tests see a possible self-dependence —
   unless the seeded interval for [k] (the join over every visible call
   site, all of which pass [k >= n]) pushes the byte distance past the
   Banerjee span.  [scale2]'s trip count [32*m] is an affine form every
   coefficient of which is a multiple of the vector length, so its strip
   loops drop the runtime remainder guard.  Toggling [Vpc.range] shows
   what the analysis buys.

     dune exec examples/symbolic.exe *)

let source =
  {|
void shift(float *a, int n, int k)
{
  int i;
  for (i = 0; i < n; i++)
    a[i] = a[i + k];
}

void smooth(float *a, int n, int k)
{
  int i;
  for (i = 0; i < n; i++)
    a[i] = 0.5f * (a[i + k] + a[i + k + 1]);
}

void scale2(float *d, int m)
{
  int i;
  for (i = 0; i < 32 * m; i++)
    d[i] = d[i] * 2.0f;
}

float buf[1024];
float img[2048];

int main()
{
  int i, r;
  float sb, si;
  for (i = 0; i < 1024; i++)
    buf[i] = 0.5f + (float)i * 0.01f;
  for (i = 0; i < 2048; i++)
    img[i] = (float)(2048 - i) * 0.125f;
  for (r = 0; r < 4; r++) {
    shift(buf, 256, 640);
    shift(buf, 128, 768);
    smooth(img, 500, 1000);
    smooth(img, 400, 1024);
    scale2(buf, 8);
    scale2(buf, 4);
  }
  sb = 0.0f;
  for (i = 0; i < 1024; i++)
    sb = sb + buf[i];
  si = 0.0f;
  for (i = 0; i < 2048; i++)
    si = si + img[i];
  printf("buf sum %g  img sum %g\n", sb, si);
  return 0;
}
|}

let () =
  let config = { Vpc.Titan.Machine.default_config with procs = 4 } in
  let build range =
    let options = { Vpc.o2 with Vpc.range; verify = `Each_stage } in
    let prog, stats = Vpc.compile ~options source in
    (Vpc.run_titan ~config prog, stats)
  in
  let r_off, s_off = build false in
  let r_on, s_on = build true in
  assert (r_on.Vpc.Titan.Machine.stdout_text = r_off.Vpc.Titan.Machine.stdout_text);
  print_string r_on.Vpc.Titan.Machine.stdout_text;
  Printf.printf
    "range off: %d loop(s) vectorized\nrange on:  %d loop(s) vectorized\n"
    s_off.Vpc.vectorize.loops_vectorized s_on.Vpc.vectorize.loops_vectorized;
  assert (s_on.Vpc.vectorize.loops_vectorized > s_off.Vpc.vectorize.loops_vectorized);
  let cyc (r : Vpc.Titan.Machine.run_result) = r.metrics.cycles in
  Printf.printf
    "range off: %7d cycles\nrange on:  %7d cycles  %.2fx\n"
    (cyc r_off) (cyc r_on)
    (float_of_int (cyc r_off) /. float_of_int (cyc r_on));
  assert (cyc r_on < cyc r_off);
  (* without the seeded intervals the tester must assume the regions
     overlap: --why-scalar names the store/load pair it cannot separate *)
  let whys = ref [] in
  let options =
    { Vpc.o2 with Vpc.range = false;
      Vpc.why_scalar = Some (fun l -> whys := l :: !whys) }
  in
  ignore (Vpc.compile ~options source);
  List.iter (fun l -> Printf.printf "[why-scalar] %s\n" l)
    (List.filter
       (fun l ->
         let pre p =
           String.length l >= String.length p && String.sub l 0 (String.length p) = p
         in
         pre "shift:" || pre "smooth:")
       (List.rev !whys))
