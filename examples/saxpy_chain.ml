(* Vector-register reuse on a fused chain of saxpy-like passes: the four
   loops share one strip loop after fusion, and the reuse pass forwards
   each Vstore to the Vloads downstream of it, so the chain's
   intermediate values never leave the vector register file.

     dune exec examples/saxpy_chain.exe *)

let source =
  {|
double x[2048];
double y[2048];
double z[2048];
double w[2048];

int main()
{
  int i;
  for (i = 0; i < 2048; i = i + 1)
    x[i] = (double)(3 * i) * 0.125;
  for (i = 0; i < 2048; i = i + 1)
    y[i] = 2.0 * x[i] + 1.0;
  for (i = 0; i < 2048; i = i + 1)
    z[i] = 3.0 * x[i] + y[i];
  for (i = 0; i < 2048; i = i + 1)
    w[i] = z[i] - x[i];
  printf("y[777]=%g z[1024]=%g w[2047]=%g\n", y[777], z[1024], w[2047]);
  return 0;
}
|}

let () =
  let config = { Vpc.Titan.Machine.default_config with procs = 1 } in
  let build vreuse =
    let prog, stats =
      Vpc.compile ~options:{ Vpc.o3 with Vpc.vreuse; verify = `Each_stage } source
    in
    (Vpc.run_titan ~config ~vreuse prog, stats)
  in
  let r_off, _ = build false in
  let r_on, stats = build true in
  assert (r_on.Vpc.Titan.Machine.stdout_text = r_off.Vpc.Titan.Machine.stdout_text);
  print_string r_on.Vpc.Titan.Machine.stdout_text;
  let v = stats.Vpc.vreuse in
  Printf.printf
    "strip loops shared: %d; Vstores forwarded: %d, Vloads shared: %d\n"
    stats.Vpc.vectorize.strip_loops_shared
    v.Vpc.Transform.Vreuse.stores_forwarded v.loads_shared;
  let cyc (r : Vpc.Titan.Machine.run_result) = r.metrics.cycles in
  Printf.printf
    "reuse off: %d cycles (%d vector elems from memory)\n\
     reuse on:  %d cycles (%d elems served from registers)  %.2fx\n"
    (cyc r_off) r_off.metrics.vector_elems (cyc r_on)
    r_on.metrics.vector_mem_elems_avoided
    (float_of_int (cyc r_off) /. float_of_int (cyc r_on))
