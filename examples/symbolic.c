/* Kernels whose bounds and offsets are function parameters.  Nothing
 * here is a literal constant at the loop: the trip counts and the
 * subscript distances only become known when the symbolic range
 * analysis joins the argument values over the visible call sites.
 *
 *   shift   reads a[i+k] while writing a[i]; every caller passes
 *           k >= n, so the read and written regions cannot overlap --
 *           but only the seeded interval for k proves it.
 *   smooth  same story with a two-point stencil a[i+k], a[i+k+1].
 *   scale2  trip count is 32*m, provably a multiple of the vector
 *           length, so the strip loop needs no remainder handling.
 *
 * With --no-range all three loops stay scalar (shift and smooth look
 * like self-dependences; scale2 still vectorizes but keeps its runtime
 * strip guards).  With range analysis on, all of them vectorize clean.
 */

void shift(float *a, int n, int k)
{
    int i;
    for (i = 0; i < n; i++)
        a[i] = a[i + k];
}

void smooth(float *a, int n, int k)
{
    int i;
    for (i = 0; i < n; i++)
        a[i] = 0.5f * (a[i + k] + a[i + k + 1]);
}

void scale2(float *d, int m)
{
    int i;
    for (i = 0; i < 32 * m; i++)
        d[i] = d[i] * 2.0f;
}

float buf[1024];
float img[2048];

int main()
{
    int i, r;
    float sb, si;

    for (i = 0; i < 1024; i++)
        buf[i] = 0.5f + (float)i * 0.01f;
    for (i = 0; i < 2048; i++)
        img[i] = (float)(2048 - i) * 0.125f;

    for (r = 0; r < 4; r++) {
        shift(buf, 256, 640);   /* k >= n at every call site */
        shift(buf, 128, 768);
        smooth(img, 500, 1000); /* writes the bottom half from the top */
        smooth(img, 400, 1024);
        scale2(buf, 8);         /* trip counts 256 and 128: full strips */
        scale2(buf, 4);
    }

    sb = 0.0f;
    for (i = 0; i < 1024; i++)
        sb = sb + buf[i];
    si = 0.0f;
    for (i = 0; i < 2048; i++)
        si = si + img[i];
    printf("buf sum %g  img sum %g\n", sb, si);
    printf("buf[0]=%g buf[100]=%g img[0]=%g img[399]=%g\n",
           buf[0], buf[100], img[0], img[399]);
    return 0;
}
