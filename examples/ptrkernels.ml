(* Interprocedural points-to on pointer-parameter kernels: saxpy's
   arguments are revealed as disjoint global arrays by the whole-program
   analysis, so the loop vectorizes at -O2 with no pragma, no `--noalias`,
   and no inlining.  With the analysis off the same loop stays scalar
   (the canonical decomposition cannot relate two unknown pointers), so
   the cycle counts show exactly what the analysis buys.

     dune exec examples/ptrkernels.exe *)

let source =
  {|
void saxpy(float *d, float *s, float alpha, int n)
{
  int i;
  for (i = 0; i < n; i++)
    d[i] = d[i] + alpha * s[i];
}

float dot(float *x, float *y, int n)
{
  int i;
  float acc;
  acc = 0.0f;
  for (i = 0; i < n; i++)
    acc = acc + x[i] * y[i];
  return acc;
}

float a[1024], b[1024], c[1024];

int main()
{
  int i;
  float s;
  for (i = 0; i < 1024; i++) {
    a[i] = i * 0.5f;
    b[i] = (1024 - i) * 0.25f;
    c[i] = 1.0f;
  }
  saxpy(a, b, 0.125f, 1024);
  saxpy(c, b, 2.0f, 1024);
  s = dot(a, c, 1024);
  printf("a[0]=%g a[1023]=%g c[512]=%g s=%g\n", a[0], a[1023], c[512], s);
  return 0;
}
|}

let () =
  (* four processors, like the paper's largest Titan: the strip loops
     spread across all four, and the scalar fallback cannot hide the
     extra instructions behind overlap any more *)
  let config = { Vpc.Titan.Machine.default_config with procs = 4 } in
  let build pointsto =
    let options = { Vpc.o2 with Vpc.pointsto; verify = `Each_stage } in
    let prog, stats = Vpc.compile ~options source in
    (Vpc.run_titan ~config prog, stats)
  in
  let r_off, s_off = build false in
  let r_on, s_on = build true in
  assert (r_on.Vpc.Titan.Machine.stdout_text = r_off.Vpc.Titan.Machine.stdout_text);
  print_string r_on.Vpc.Titan.Machine.stdout_text;
  Printf.printf
    "pointsto off: %d loop(s) vectorized\npointsto on:  %d loop(s) vectorized\n"
    s_off.Vpc.vectorize.loops_vectorized s_on.Vpc.vectorize.loops_vectorized;
  assert (s_on.Vpc.vectorize.loops_vectorized > s_off.Vpc.vectorize.loops_vectorized);
  let cyc (r : Vpc.Titan.Machine.run_result) = r.metrics.cycles in
  Printf.printf
    "pointsto off: %7d cycles\npointsto on:  %7d cycles  %.2fx\n"
    (cyc r_off) (cyc r_on)
    (float_of_int (cyc r_off) /. float_of_int (cyc r_on));
  assert (cyc r_on < cyc r_off);
  (* the dot loop carries its reduction: --why-scalar should say so *)
  let whys = ref [] in
  let options =
    { Vpc.o2 with Vpc.why_scalar = Some (fun l -> whys := l :: !whys) }
  in
  ignore (Vpc.compile ~options source);
  List.iter (fun l -> Printf.printf "[why-scalar] %s\n" l)
    (List.filter
       (fun l ->
         (* main's init loop vectorizes; dot's reduction does not *)
         String.length l >= 4 && String.sub l 0 4 = "dot:")
       (List.rev !whys))
