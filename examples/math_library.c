/* §7's math-library scenario as a single translation unit: the library
   routines and the client loop together, so the calls inline and the
   loop vectorizes.  math_library.ml shows the real cross-file catalog
   flow; this file exercises the same inlining and vectorization. */
static float half = 0.5f;

float lerp(float a, float b, float t) { return a + (b - a) * t; }
float sq(float x) { return x * x; }
float midpoint(float a, float b) { return lerp(a, b, half); }

float xs[256], ys[256], zs[256];

int main()
{
  int i;
  float s;
  for (i = 0; i < 256; i++) { xs[i] = i * 0.1f; ys[i] = 25.6f - i * 0.1f; }
  for (i = 0; i < 256; i++)
    zs[i] = sq(midpoint(xs[i], ys[i]));
  s = 0;
  for (i = 0; i < 256; i++) s += zs[i];
  printf("sum=%g z0=%g\n", s, zs[0]);
  return 0;
}
