(* Doacross pipelining of a wavefront update: u[k+64] reads u[k] and
   u[k+1], giving two carried distances (63 and 64).  Redundant-sync
   elimination keeps only the chains the exact-sum coverage rule needs,
   and the nonlinear body overlaps across processors.

     dune exec examples/wavefront.exe *)

let source =
  {|
double u[8400];
int main() {
  int k;
  double s, q, r, w;
  for (k = 0; k < 64; k = k + 1)
    u[k] = 0.25 + (double)k * 0.015625;
  for (k = 0; k < 8192; k++) {
    s = u[k] * 0.3 + u[k + 1] * 0.3;
    q = u[k] * u[k + 1];
    r = q * (1.0 - q * 0.5) * 0.02 + s;
    w = q * (0.5 + q * 0.25) * 0.015625;
    u[k + 64] = u[k + 64] * 0.35 + r + w + 0.05;
  }
  printf("u[4096]=%.15g u[8255]=%.15g\n", u[4096], u[8255]);
  return 0;
}
|}

let () =
  let config = { Vpc.Titan.Machine.default_config with procs = 4 } in
  let compile doacross_sync =
    Vpc.compile ~options:{ Vpc.o2 with Vpc.doacross_sync } source
  in
  let prog_on, stats = compile true in
  let prog_off, _ = compile false in
  Printf.printf
    "doacross loops pipelined: %d, syncs placed: %d, eliminated: %d\n"
    stats.Vpc.doacross.do_pipelined stats.Vpc.doacross.syncs_placed
    stats.Vpc.doacross.syncs_eliminated;
  let run p = (Vpc.run_titan ~config p).Vpc.Titan.Machine.metrics in
  let off = run prog_off and on = run prog_on in
  Printf.printf
    "serial:    %d cycles\npipelined: %d cycles (%.2fx, posts=%d waits=%d)\n"
    off.Vpc.Titan.Machine.cycles on.Vpc.Titan.Machine.cycles
    (float_of_int off.Vpc.Titan.Machine.cycles
    /. float_of_int on.Vpc.Titan.Machine.cycles)
    on.Vpc.Titan.Machine.posts on.Vpc.Titan.Machine.waits
