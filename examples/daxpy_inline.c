/* The paper's §9 walkthrough: daxpy's pointer parameters block
   vectorization until it is inlined into main, where constant
   propagation reveals the arguments and the loop vectorizes
   (see daxpy_inline.ml). */
void daxpy(float *x, float *y, float *z, float alpha, int n)
{
  if (n <= 0)
    return;
  if (alpha == 0)
    return;
  for (; n; n--)
    *x++ = *y++ + alpha * *z++;
}

float a[100], b[100], c[100];

int main()
{
  int i;
  for (i = 0; i < 100; i++) { b[i] = 3 * i; c[i] = i + 1; }
  daxpy(a, b, c, 1.0, 100);
  printf("a[0]=%g a[1]=%g a[99]=%g\n", a[0], a[1], a[99]);
  return 0;
}
