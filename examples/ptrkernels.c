/* Kernels over pointer parameters, no pragmas and no inlining: at -O2
   only the interprocedural points-to analysis can prove the arguments
   disjoint, so saxpy vectorizes exactly when the analysis is on.  Both
   call sites bind d to {a, c} and s to {b} -- disjoint object sets, so
   the store through d and the load through s cannot touch the same
   memory.  The dot loop stays scalar either way (carried reduction);
   --why-scalar names the cycle. */
void saxpy(float *d, float *s, float alpha, int n)
{
  int i;
  for (i = 0; i < n; i++)
    d[i] = d[i] + alpha * s[i];
}

float dot(float *x, float *y, int n)
{
  int i;
  float acc;
  acc = 0.0f;
  for (i = 0; i < n; i++)
    acc = acc + x[i] * y[i];
  return acc;
}

float a[1024], b[1024], c[1024];

int main()
{
  int i;
  float s;
  for (i = 0; i < 1024; i++) {
    a[i] = i * 0.5f;
    b[i] = (1024 - i) * 0.25f;
    c[i] = 1.0f;
  }
  saxpy(a, b, 0.125f, 1024);
  saxpy(c, b, 2.0f, 1024);
  s = dot(a, c, 1024);
  printf("a[0]=%g a[1023]=%g c[512]=%g s=%g\n", a[0], a[1023], c[512], s);
  return 0;
}
