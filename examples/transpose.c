/* Transpose: interchanging i and j is legal (no dependence at all), but
   either order leaves one unit-stride and one long-stride reference, so
   the cost model finds no win and keeps the source order — the
   neutrality case for the interchange pass (§7). */
double a[32][64];
double b[64][32];

int main()
{
  int i, j;
  for (i = 0; i < 32; i = i + 1)
    for (j = 0; j < 64; j = j + 1)
      a[i][j] = (double)(i + 2 * j) * 0.5;
  for (i = 0; i < 32; i = i + 1)
    for (j = 0; j < 64; j = j + 1)
      b[j][i] = a[i][j];
  printf("b[32][16]=%g\n", b[32][16]);
  return 0;
}
