/* The paper's volatile example (§1): a busy-wait on a device status
   register that every optimization phase must leave alone.  Compile
   with --verify-il --no-run; actually executing it spins until a device
   model flips the register (see device_poll.ml for that harness). */
volatile int keyboard_status;
int spins;

int wait_for_key()
{
  keyboard_status = 0;
  while (!keyboard_status)
    spins++;
  return keyboard_status;
}

int main()
{
  int code;
  code = wait_for_key();
  printf("key=%d after %d spins\n", code, spins);
  return 0;
}
