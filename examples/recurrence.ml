(* Doacross pipelining of a linear recurrence with carried distance 8:
   a[i+8] depends on a[i], so iterations 8 apart are ordered by one
   post/wait channel while the heavy polynomial body overlaps across
   processors.

     dune exec examples/recurrence.exe *)

let source =
  {|
double a[4200];
int main() {
  int i;
  double t, p;
  for (i = 0; i < 8; i = i + 1)
    a[i] = 0.25 + (double)i * 0.0625;
  for (i = 0; i < 4096; i++) {
    t = a[i];
    p = (t * 0.5 + 1.0) * (t - 0.25) + (t * t) * 0.125;
    p = p * (t * 0.0625 - 2.0) + (t + 3.0) * 0.75;
    a[i + 8] = p * 0.125 + t * 0.875;
  }
  printf("a[2048]=%g a[4103]=%g\n", a[2048], a[4103]);
  return 0;
}
|}

let () =
  let config = { Vpc.Titan.Machine.default_config with procs = 4 } in
  let compile doacross_sync =
    Vpc.compile ~options:{ Vpc.o2 with Vpc.doacross_sync } source
  in
  let prog_on, stats = compile true in
  let prog_off, _ = compile false in
  Printf.printf "doacross loops pipelined: %d, syncs placed: %d\n"
    stats.Vpc.doacross.do_pipelined stats.Vpc.doacross.syncs_placed;
  let run p = (Vpc.run_titan ~config p).Vpc.Titan.Machine.metrics in
  let off = run prog_off and on = run prog_on in
  Printf.printf
    "serial:    %d cycles\npipelined: %d cycles (%.2fx, posts=%d waits=%d)\n"
    off.Vpc.Titan.Machine.cycles on.Vpc.Titan.Machine.cycles
    (float_of_int off.Vpc.Titan.Machine.cycles
    /. float_of_int on.Vpc.Titan.Machine.cycles)
    on.Vpc.Titan.Machine.posts on.Vpc.Titan.Machine.waits
