bench/workloads.ml: Buffer List Printf String
