bench/main.mli:
