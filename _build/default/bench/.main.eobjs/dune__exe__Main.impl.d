bench/main.ml: Analyze Array Bechamel Benchmark Hashtbl Instance List Measure Printf Staged String Sys Test Time Toolkit Vpc Workloads
