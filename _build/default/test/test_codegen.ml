(* Titan code generator tests: instruction selection shapes, frame
   layout, volatile markers, parallel region markers. *)

open Helpers
open Vpc.Titan

let gen src fname =
  let prog = compile ~options:Vpc.o0 src in
  let layout = Machine.layout_globals prog in
  let tprog =
    Codegen.gen_program prog ~global_addr:(fun id ->
        Hashtbl.find layout.Machine.addr_of id)
  in
  (prog, Hashtbl.find tprog.Isa.funcs fname)

let asm_text (f : Isa.func) = Fmt.str "%a" Isa.pp_func f

let scalar_selection () =
  let _, f =
    gen
      {|float g;
        float f(float x, int n) { g = x * 2.0f; return x + (float)(n / 3); }|}
      "f"
  in
  let asm = asm_text f in
  check_contains "float multiply" ~needle:"fmul.s" asm;
  check_contains "float add" ~needle:"fadd" asm;
  check_contains "int divide" ~needle:"div " asm;
  check_contains "int to float" ~needle:"cvtif" asm;
  check_contains "store to the global" ~needle:"store[float]" asm

let volatile_marked () =
  let _, f =
    gen
      {|volatile int port;
        int f() { port = 1; return port + port; }|}
      "f"
  in
  let asm = asm_text f in
  check_contains "volatile store marker" ~needle:"store.v" asm;
  check_contains "volatile load marker" ~needle:"load.v" asm;
  (* two reads, two volatile loads *)
  let count needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i acc =
      if i + n > h then acc
      else go (i + 1) (acc + if String.sub hay i n = needle then 1 else 0)
    in
    go 0 0
  in
  Alcotest.(check int) "two volatile loads" 2 (count "load.v" asm)

let frame_for_addressed_locals () =
  let _, f =
    gen
      {|void use(int *p);
        int f() { int x; int arr[4]; use(&x); use(arr); return x + arr[0]; }|}
      "f"
  in
  (* x (4) aligned + arr (16): frame covers both *)
  Alcotest.(check bool)
    (Printf.sprintf "frame size %d >= 20" f.Isa.frame_size)
    true
    (f.Isa.frame_size >= 20);
  let asm = asm_text f in
  (* frame addresses are computed off the frame base register r0 *)
  check_contains "frame base arithmetic" ~needle:"add r" asm

let registers_for_plain_locals () =
  let _, f = gen {|int f(int a, int b) { int t; t = a * b; return t + 1; }|} "f" in
  Alcotest.(check int) "no frame needed" 0 f.Isa.frame_size

let vector_instructions () =
  let prog = compile ~options:Vpc.o2
      {|float a[100], b[100];
        void f() { int i; for (i = 0; i < 100; i++) a[i] = b[i] * 2.0f; }|}
  in
  let layout = Machine.layout_globals prog in
  let tprog =
    Codegen.gen_program prog ~global_addr:(fun id ->
        Hashtbl.find layout.Machine.addr_of id)
  in
  let asm = asm_text (Hashtbl.find tprog.Isa.funcs "f") in
  check_contains "vector load" ~needle:"vload" asm;
  check_contains "vector multiply" ~needle:"vfmul" asm;
  check_contains "vector store" ~needle:"vstore" asm;
  check_contains "parallel region enter" ~needle:"par.enter" asm;
  check_contains "iteration marker" ~needle:"par.iter" asm;
  check_contains "parallel region exit" ~needle:"par.exit" asm

let doacross_markers () =
  let prog = compile ~options:Vpc.o2
      {|struct node { float v; int next; };
        struct node pool[32];
        float out[32];
        void walk() {
          int p, k;
          p = 0; k = 0;
          #pragma vpc independent
          while (p != -1) {
            out[k] = pool[p].v;
            p = pool[p].next;
            k++;
          }
        }|}
  in
  let layout = Machine.layout_globals prog in
  let tprog =
    Codegen.gen_program prog ~global_addr:(fun id ->
        Hashtbl.find layout.Machine.addr_of id)
  in
  let asm = asm_text (Hashtbl.find tprog.Isa.funcs "walk") in
  check_contains "serial prefix marker" ~needle:"par.serial_end" asm

let labels_resolve () =
  let _, f =
    gen
      {|int f(int n) {
          int s;
          s = 0;
          while (n > 0) { if (n & 1) s += n; n--; }
          return s;
        }|}
      "f"
  in
  (* every jump/branch target must be a defined label *)
  Array.iter
    (fun inst ->
      match inst with
      | Isa.Jump l | Isa.Branch_zero (_, l) | Isa.Branch_nonzero (_, l) ->
          if not (Hashtbl.mem f.Isa.labels l) then
            Alcotest.failf "unresolved label %s" l
      | _ -> ())
    f.Isa.code

let char_truncation_insts () =
  let _, f = gen {|char f(int n) { return (char)n; }|} "f" in
  let asm = asm_text f in
  (* sign extension via shl/shr pair *)
  check_contains "shift left" ~needle:"shl" asm;
  check_contains "arithmetic shift right" ~needle:"shr" asm

let tests =
  [
    Alcotest.test_case "scalar selection" `Quick scalar_selection;
    Alcotest.test_case "volatile markers" `Quick volatile_marked;
    Alcotest.test_case "frame layout" `Quick frame_for_addressed_locals;
    Alcotest.test_case "register locals" `Quick registers_for_plain_locals;
    Alcotest.test_case "vector instructions" `Quick vector_instructions;
    Alcotest.test_case "doacross markers" `Quick doacross_markers;
    Alcotest.test_case "labels resolve" `Quick labels_resolve;
    Alcotest.test_case "char truncation" `Quick char_truncation_insts;
  ]
