(* Unit and property tests for the support library: sexp printing and
   parsing, bitsets, gensyms. *)

open Vpc.Support

let sexp_roundtrip () =
  let cases =
    [
      Sexp.Atom "hello";
      Sexp.List [];
      Sexp.List [ Sexp.Atom "a"; Sexp.Atom "b c"; Sexp.Atom "" ];
      Sexp.List [ Sexp.List [ Sexp.Atom "nested" ]; Sexp.Atom "x\"y\\z" ];
      Sexp.List [ Sexp.Atom "line\nbreak"; Sexp.Atom "tab\there" ];
      Sexp.int 42;
      Sexp.float 3.25;
      Sexp.bool true;
    ]
  in
  List.iter
    (fun s ->
      let text = Sexp.to_string s in
      let back = Sexp.of_string text in
      if back <> s then
        Alcotest.failf "sexp roundtrip failed for %s" text)
    cases

let sexp_comments () =
  let s = Sexp.of_string "(a ; comment here\n b)" in
  Alcotest.(check bool) "comment skipped"
    true
    (s = Sexp.List [ Sexp.Atom "a"; Sexp.Atom "b" ])

let sexp_errors () =
  List.iter
    (fun text ->
      match Sexp.of_string text with
      | exception Sexp.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected parse error for %S" text)
    [ "("; ")"; "(a"; "\"unterminated"; "a b" (* trailing garbage *) ]

let sexp_prop =
  let rec gen_sexp depth st =
    if depth = 0 || QCheck.Gen.int_bound 2 st = 0 then
      Sexp.Atom (QCheck.Gen.string_size ~gen:QCheck.Gen.printable (QCheck.Gen.int_bound 8) st)
    else
      Sexp.List
        (QCheck.Gen.list_size (QCheck.Gen.int_bound 4) (gen_sexp (depth - 1)) st)
  in
  QCheck.Test.make ~count:200 ~name:"sexp print/parse roundtrip"
    (QCheck.make (gen_sexp 4))
    (fun s -> Sexp.of_string (Sexp.to_string s) = s)

let bitset_basics () =
  let b = Bitset.create 70 in
  Alcotest.(check bool) "initially empty" true (Bitset.is_empty b);
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 69;
  Alcotest.(check bool) "mem 0" true (Bitset.mem b 0);
  Alcotest.(check bool) "mem 63" true (Bitset.mem b 63);
  Alcotest.(check bool) "mem 69" true (Bitset.mem b 69);
  Alcotest.(check bool) "not mem 5" false (Bitset.mem b 5);
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal b);
  Bitset.remove b 63;
  Alcotest.(check bool) "removed" false (Bitset.mem b 63);
  Alcotest.(check (list int)) "elements" [ 0; 69 ] (Bitset.elements b)

let bitset_union_transfer () =
  let a = Bitset.create 16 and b = Bitset.create 16 in
  Bitset.add a 1;
  Bitset.add b 2;
  Bitset.add b 1;
  let changed = Bitset.union_into a b in
  Alcotest.(check bool) "union changed" true changed;
  Alcotest.(check (list int)) "union" [ 1; 2 ] (Bitset.elements a);
  let changed2 = Bitset.union_into a b in
  Alcotest.(check bool) "union idempotent" false changed2;
  let gen = Bitset.create 16 and kill = Bitset.create 16 in
  Bitset.add gen 5;
  Bitset.add kill 1;
  Bitset.transfer ~gen ~kill a;
  Alcotest.(check (list int)) "transfer" [ 2; 5 ] (Bitset.elements a)

let gensym_counters () =
  let g = Gensym.create () in
  Alcotest.(check int) "fresh 0" 0 (Gensym.fresh g);
  Alcotest.(check int) "fresh 1" 1 (Gensym.fresh g);
  Gensym.advance_past g 10;
  Alcotest.(check int) "past 10" 11 (Gensym.fresh g);
  let g2 = Gensym.create ~start:5 () in
  Alcotest.(check string) "named" "t5" (Gensym.fresh_name g2 "t")

let loc_merge () =
  let mk l c = { Loc.line = l; col = c } in
  let a = Loc.make ~file:"f.c" ~start_pos:(mk 1 1) ~end_pos:(mk 1 5) in
  let b = Loc.make ~file:"f.c" ~start_pos:(mk 2 1) ~end_pos:(mk 2 9) in
  let m = Loc.merge a b in
  Alcotest.(check int) "merged end line" 2 m.Loc.end_pos.Loc.line;
  Alcotest.(check bool) "dummy merge" true (Loc.merge Loc.dummy b == b);
  Alcotest.(check string) "to_string" "f.c:1:1" (Loc.to_string a)

let tests =
  [
    Alcotest.test_case "sexp roundtrip" `Quick sexp_roundtrip;
    Alcotest.test_case "sexp comments" `Quick sexp_comments;
    Alcotest.test_case "sexp errors" `Quick sexp_errors;
    QCheck_alcotest.to_alcotest sexp_prop;
    Alcotest.test_case "bitset basics" `Quick bitset_basics;
    Alcotest.test_case "bitset union/transfer" `Quick bitset_union_transfer;
    Alcotest.test_case "gensym" `Quick gensym_counters;
    Alcotest.test_case "loc" `Quick loc_merge;
  ]
