(* Vectorizer tests: distribution, recurrences, strip mining, short
   vectors, aliasing conservatism, pragmas, parallel marking — and
   semantics preservation throughout. *)

open Helpers

let o2 = Vpc.o2
let o2_noalias = { Vpc.o2 with Vpc.assume_noalias = true }

let vector_add_vectorizes () =
  let src =
    {|float a[100], b[100], c[100];
      void add() {
        int i;
        for (i = 0; i < 100; i++) a[i] = b[i] + c[i];
      }|}
  in
  let il = func_il ~options:o2 src "add" in
  check_contains "vector section" ~needle:"[0 : " il;
  check_contains "do parallel strip loop" ~needle:"do parallel" il

let recurrence_stays_scalar () =
  let src =
    {|float a[100];
      void rec_() {
        int i;
        for (i = 0; i < 99; i++) a[i + 1] = a[i] + 1.0;
      }|}
  in
  let il =
    func_il
      ~options:{ o2 with Vpc.scalar_replacement = false; strength_reduction = false }
      src "rec_"
  in
  check_not_contains "no vector stmt for recurrence" ~needle:"[0 : " il

let reversed_copy_is_fine () =
  (* a[i] = a[i]: distance 0 only, vectorizable *)
  let src =
    {|float a[100];
      void f() {
        int i;
        for (i = 0; i < 100; i++) a[i] = a[i] * 2.0f;
      }|}
  in
  let il = func_il ~options:o2 src "f" in
  check_contains "self copy vectorizes" ~needle:"[0 : " il

let distribution_order () =
  (* S2 reads what S1 writes (loop-independent): both vectorize, S1's
     loop first *)
  let src =
    {|float a[100], b[100], c[100];
      void f() {
        int i;
        for (i = 0; i < 100; i++) {
          a[i] = b[i] + 1.0f;
          c[i] = a[i] * 2.0f;
        }
      }|}
  in
  let il = func_il ~options:o2 src "f" in
  (* both statements vectorized: two sections assigned *)
  let first = String.index il '[' in
  ignore first;
  check_contains "a vectorized" ~needle:"(&a" il;
  check_contains "c vectorized" ~needle:"(&c" il;
  assert_all_configs_agree "distribution semantics"
    {|float a[100], b[100], c[100];
      int main() {
        int i;
        float s;
        for (i = 0; i < 100; i++) b[i] = i;
        for (i = 0; i < 100; i++) {
          a[i] = b[i] + 1.0f;
          c[i] = a[i] * 2.0f;
        }
        s = 0;
        for (i = 0; i < 100; i++) s += c[i];
        printf("%g\n", s);
        return 0;
      }|}

let backward_dep_ordering () =
  (* S1 reads a[i+1], S2 writes a[i]: anti dependence forces the read
     loop to run before the write loop when distributed *)
  assert_all_configs_agree "anti-dep distribution"
    {|float a[101], b[100];
      int main() {
        int i;
        float s;
        for (i = 0; i < 101; i++) a[i] = i;
        for (i = 0; i < 100; i++) {
          b[i] = a[i + 1];
          a[i] = 0.0f;
        }
        s = 0;
        for (i = 0; i < 100; i++) s += b[i] + a[i];
        printf("%g\n", s);
        return 0;
      }|}

let short_vector_no_strip_loop () =
  (* trip 4 <= vlen: a bare vector statement, no strip loop (the graphics
     case §5.2 calls out) *)
  let src =
    {|float v[4], w[4];
      void f() {
        int i;
        for (i = 0; i < 4; i++) v[i] = w[i] * 2.0f;
      }|}
  in
  let il = func_il ~options:o2 src "f" in
  check_contains "vector stmt" ~needle:"[0 : 4 : 4]" il;
  check_not_contains "no strip loop" ~needle:"do parallel" il

let pointer_params_block_vectorization () =
  let src =
    {|void f(float *x, float *y, int n) {
        int i;
        for (i = 0; i < n; i++) x[i] = y[i] + 1.0f;
      }|}
  in
  let il =
    func_il
      ~options:{ o2 with Vpc.scalar_replacement = false; strength_reduction = false }
      src "f"
  in
  check_not_contains "may-alias blocks" ~needle:"[0 : " il;
  (* the paper's escape hatches *)
  let il2 = func_il ~options:o2_noalias src "f" in
  check_contains "noalias option vectorizes" ~needle:"[0 : " il2

let pragma_asserts_independence () =
  let src =
    {|void f(float *x, float *y, int n) {
        int i;
        #pragma vpc independent
        for (i = 0; i < n; i++) x[i] = y[i] + 1.0f;
      }|}
  in
  let il = func_il ~options:o2 src "f" in
  check_contains "pragma vectorizes" ~needle:"[0 : " il

let iota_vectorizes () =
  let src =
    {|int idx[100];
      void f() {
        int i;
        for (i = 0; i < 100; i++) idx[i] = 3 * i + 7;
      }|}
  in
  let il = func_il ~options:o2 src "f" in
  check_contains "iota" ~needle:"iota" il;
  assert_all_configs_agree "iota semantics"
    {|int idx[100];
      int main() {
        int i, s;
        for (i = 0; i < 100; i++) idx[i] = 3 * i + 7;
        s = 0;
        for (i = 0; i < 100; i++) s ^= idx[i] + i;
        printf("%d\n", s);
        return 0;
      }|}

let reduction_not_vectorized_but_correct () =
  assert_all_configs_agree "sum reduction"
    {|float a[200];
      int main() {
        int i;
        float s;
        for (i = 0; i < 200; i++) a[i] = i * 0.5f;
        s = 0;
        for (i = 0; i < 200; i++) s += a[i];
        printf("%g\n", s);
        return 0;
      }|}

let stride_and_offset_sections () =
  assert_all_configs_agree "strided and offset"
    {|float a[200], b[200];
      int main() {
        int i;
        float s;
        for (i = 0; i < 200; i++) b[i] = i;
        for (i = 0; i < 99; i++) a[2 * i] = b[i + 1] * 2.0f;
        s = 0;
        for (i = 0; i < 200; i++) s += a[i];
        printf("%g\n", s);
        return 0;
      }|}

let parallel_scalar_loop () =
  (* not vector-expressible rhs (non-affine subscript) but independent:
     can still go parallel *)
  let src =
    {|float a[128], b[128];
      void f() {
        int i;
        for (i = 0; i < 128; i++)
          a[i] = b[(i * i) & 127];
      }|}
  in
  let il = func_il ~options:o2 src "f" in
  (* i*i is not affine: statement can't become a vector op; the whole
     loop may or may not be marked parallel depending on dependence on b;
     at minimum the result must be correct *)
  ignore il;
  assert_all_configs_agree "non-affine subscript"
    {|float a[128], b[128];
      int main() {
        int i;
        float s;
        for (i = 0; i < 128; i++) b[i] = i;
        for (i = 0; i < 128; i++) a[i] = b[(i * i) & 127];
        s = 0;
        for (i = 0; i < 128; i++) s += a[i];
        printf("%g\n", s);
        return 0;
      }|}

let remainder_strips () =
  (* trip not a multiple of vlen: remainder strip must be exact *)
  assert_all_configs_agree "n=67 remainder"
    {|float a[67], b[67];
      int main() {
        int i;
        float s;
        for (i = 0; i < 67; i++) b[i] = i + 1;
        for (i = 0; i < 67; i++) a[i] = b[i] * 3.0f;
        s = 0;
        for (i = 0; i < 67; i++) s += a[i];
        printf("%g\n", s);
        return 0;
      }|}

let vectorize_stats () =
  let src =
    {|float a[100], b[100];
      void f() {
        int i;
        for (i = 0; i < 100; i++) a[i] = b[i] + 1.0f;   /* vectorizes */
        for (i = 0; i < 99; i++) a[i + 1] = a[i];        /* recurrence */
      }|}
  in
  let prog = compile ~options:{ Vpc.o1 with Vpc.strength_reduction = false } src in
  let stats = Vpc.Vectorize.Vectorize.new_stats () in
  List.iter
    (fun f -> ignore (Vpc.Vectorize.Vectorize.run ~stats prog f))
    prog.Vpc.Il.Prog.funcs;
  Alcotest.(check int) "examined 2" 2 stats.loops_examined;
  Alcotest.(check int) "one vectorized" 1 stats.loops_vectorized;
  Alcotest.(check int) "one rejected on deps" 1 stats.loops_rejected_dependence

let vector_unops () =
  assert_all_configs_agree "vector ! and ~"
    {|int a[96], b[96], c[96];
      float f[96];
      int main() {
        int i, s;
        for (i = 0; i < 96; i++) { a[i] = (i % 3 == 0) ? 0 : i; f[i] = (i & 7) ? 1.5f : 0.0f; }
        for (i = 0; i < 96; i++) b[i] = !a[i];
        for (i = 0; i < 96; i++) c[i] = ~a[i];
        for (i = 0; i < 96; i++) b[i] += !f[i];
        s = 0;
        for (i = 0; i < 96; i++) s += b[i] * 3 + (c[i] & 255);
        printf("%d\n", s);
        return 0;
      }|}

let vector_conversions () =
  (* float <-> int element conversions inside vector statements *)
  assert_all_configs_agree "vector conversions"
    {|float f[80];
      int n[80];
      double d[80];
      int main() {
        int i, si;
        double sd;
        for (i = 0; i < 80; i++) f[i] = i * 0.75f;
        for (i = 0; i < 80; i++) n[i] = (int)f[i];       /* f32 -> i32 */
        for (i = 0; i < 80; i++) d[i] = f[i] + 0.25f;    /* f32 -> f64 store */
        si = 0; sd = 0;
        for (i = 0; i < 80; i++) { si += n[i]; sd += d[i]; }
        printf("%d %g\n", si, sd);
        return 0;
      }|}

let double_vectors () =
  (* stride-8 sections for doubles *)
  let src =
    {|double a[64], b[64];
      void f() { int i; for (i = 0; i < 64; i++) a[i] = b[i] * 2.0 + 1.0; }|}
  in
  let il = func_il ~options:o2 src "f" in
  check_contains "8-byte stride section" ~needle:": 8]" il;
  assert_all_configs_agree "double semantics"
    {|double a[64], b[64];
      int main() {
        int i;
        double s;
        for (i = 0; i < 64; i++) b[i] = i * 0.1;
        for (i = 0; i < 64; i++) a[i] = b[i] * 2.0 + 1.0;
        s = 0;
        for (i = 0; i < 64; i++) s += a[i];
        printf("%.10g\n", s);
        return 0;
      }|}

let tests =
  [
    Alcotest.test_case "vector add" `Quick vector_add_vectorizes;
    Alcotest.test_case "recurrence scalar" `Quick recurrence_stays_scalar;
    Alcotest.test_case "in-place update" `Quick reversed_copy_is_fine;
    Alcotest.test_case "distribution" `Quick distribution_order;
    Alcotest.test_case "anti-dep ordering" `Quick backward_dep_ordering;
    Alcotest.test_case "short vector (graphics)" `Quick short_vector_no_strip_loop;
    Alcotest.test_case "pointer aliasing" `Quick pointer_params_block_vectorization;
    Alcotest.test_case "pragma independent" `Quick pragma_asserts_independence;
    Alcotest.test_case "iota" `Quick iota_vectorizes;
    Alcotest.test_case "reduction correct" `Quick reduction_not_vectorized_but_correct;
    Alcotest.test_case "stride/offset sections" `Quick stride_and_offset_sections;
    Alcotest.test_case "non-affine subscript" `Quick parallel_scalar_loop;
    Alcotest.test_case "remainder strips" `Quick remainder_strips;
    Alcotest.test_case "stats" `Quick vectorize_stats;
    Alcotest.test_case "vector unary ops" `Quick vector_unops;
    Alcotest.test_case "vector conversions" `Quick vector_conversions;
    Alcotest.test_case "double vectors" `Quick double_vectors;
  ]
