(* Serialization tests: the pointer-free IL round-trips through its sexp
   form at every optimization level — the §7 requirement that procedures
   can be paged and cataloged.  Includes optimized programs (DO loops,
   vector statements, doacross markers all survive). *)

open Helpers

let roundtrip_outputs name options src =
  let prog = compile ~options src in
  let reference = interp_output prog in
  let text = Vpc.Inline.Catalog.to_string prog in
  let back = Vpc.Inline.Catalog.of_string text in
  Alcotest.(check string)
    (name ^ ": reloaded program runs identically")
    reference (interp_output back);
  (* second serialization is identical: the form is canonical *)
  Alcotest.(check string)
    (name ^ ": stable serialization")
    text
    (Vpc.Inline.Catalog.to_string back);
  (* the reloaded program also simulates identically *)
  Alcotest.(check string)
    (name ^ ": titan agrees after reload")
    reference (titan_output back)

let sample_program =
  {|float a[64], b[64];
    struct pair { int x; int y; };
    struct pair ps[4];
    int scale = 3;
    float fscale = 1.5f;
    char greeting[] = "hi";
    int helper(int n) { return n * scale; }
    int main() {
      int i;
      float s;
      for (i = 0; i < 64; i++) b[i] = i * 0.5f;
      for (i = 0; i < 64; i++) a[i] = b[i] * fscale + 1.0f;
      ps[2].x = helper(5);
      ps[2].y = ps[2].x - 1;
      s = 0;
      for (i = 0; i < 64; i++) s += a[i];
      printf("%s %g %d %d\n", greeting, s, ps[2].x, ps[2].y);
      return 0;
    }|}

let roundtrip_all_levels () =
  List.iter
    (fun (lname, options) -> roundtrip_outputs lname options sample_program)
    all_levels

let roundtrip_vector_statements () =
  (* make sure Vector/Do_loop/parallel survive explicitly *)
  let prog =
    compile ~options:Vpc.o2
      {|float x[100], y[100];
        void f() { int i; for (i = 0; i < 100; i++) x[i] = y[i] + 1.0f; }
        int main() { f(); printf("%g\n", x[50]); return 0; }|}
  in
  let il_before = Vpc.Il.Pp.prog_to_string prog in
  check_contains "has vector stmt" ~needle:"[0 : " il_before;
  let back = Vpc.Inline.Catalog.of_string (Vpc.Inline.Catalog.to_string prog) in
  let il_after = Vpc.Il.Pp.prog_to_string back in
  Alcotest.(check string) "pretty-print identical" il_before il_after

let roundtrip_random_programs () =
  for seed = 100 to 110 do
    let src = Gen_c.program seed in
    List.iter
      (fun (lname, options) ->
        roundtrip_outputs (Printf.sprintf "random %d %s" seed lname) options src)
      [ ("O0", Vpc.o0); ("O3", Vpc.o3) ]
  done

let expr_sexp_prop =
  (* random expressions round-trip exactly, including float bit patterns *)
  let module G = QCheck.Gen in
  let rec gen_expr depth st : Vpc.Il.Expr.t =
    let open Vpc.Il in
    if depth = 0 || G.int_bound 2 st = 0 then
      match G.int_bound 3 st with
      | 0 -> Expr.int_const (G.int_range (-1000) 1000 st)
      | 1 -> Expr.float_const ~ty:Ty.Float (G.float_bound_inclusive 100.0 st)
      | 2 -> Expr.var_id (G.int_bound 50 st) Ty.Int
      | _ -> Expr.mk (Expr.Addr_of (G.int_bound 50 st)) (Ty.Ptr Ty.Float)
    else
      let a = gen_expr (depth - 1) st in
      let b = gen_expr (depth - 1) st in
      match G.int_bound 4 st with
      | 0 -> Expr.binop Expr.Add a b Ty.Int
      | 1 -> Expr.binop Expr.Mul a b Ty.Float
      | 2 -> Expr.unop Expr.Neg a a.Expr.ty
      | 3 -> Expr.mk (Expr.Load (Expr.cast (Ty.Ptr Ty.Float) a)) Ty.Float
      | _ -> Expr.cast Ty.Double b
  in
  QCheck.Test.make ~count:300 ~name:"expr sexp roundtrip"
    (QCheck.make (gen_expr 5))
    (fun e ->
      let open Vpc.Il in
      Expr.equal e (Expr.of_sexp (Vpc.Support.Sexp.of_string
                                    (Vpc.Support.Sexp.to_string (Expr.to_sexp e)))))

let float_bit_exactness () =
  (* %h-printed floats reload bit-exactly *)
  List.iter
    (fun f ->
      let s = Vpc.Support.Sexp.float f in
      let back = Vpc.Support.Sexp.as_float s in
      if Int64.bits_of_float back <> Int64.bits_of_float f then
        Alcotest.failf "float %h did not roundtrip (got %h)" f back)
    [ 0.1; -0.0; 1e-40; 3.14159265358979; Float.max_float; 1.5e-300 ]

let tests =
  [
    Alcotest.test_case "all levels roundtrip" `Quick roundtrip_all_levels;
    Alcotest.test_case "vector statements survive" `Quick roundtrip_vector_statements;
    Alcotest.test_case "random programs roundtrip" `Slow roundtrip_random_programs;
    QCheck_alcotest.to_alcotest expr_sexp_prop;
    Alcotest.test_case "float bit exactness" `Quick float_bit_exactness;
  ]
