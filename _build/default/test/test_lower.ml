(* Lowering tests (paper §4): expressions become (statement-list, pure
   expression) pairs; side effects are explicit statements; the IL shapes
   must match the paper's listings. *)

open Helpers

let post_increment_shape () =
  (* the §5.3 example: while(n) { *a++ = *b++; n--; } *)
  let src =
    {|void copy(float *a, float *b, int n) {
        while (n) {
          *a++ = *b++;
          n--;
        }
      }|}
  in
  let il = func_il src "copy" in
  (* temp = a; a = temp + 4 — pointer scaled to bytes *)
  check_contains "temp chain for a" ~needle:"= a;" il;
  check_contains "scaled increment" ~needle:"+ 4;" il;
  check_contains "n decrement via temp" ~needle:"- 1;" il;
  (* no ++ survives: all updates are assignments *)
  check_not_contains "no ++" ~needle:"++" il

let logical_ops_become_control_flow () =
  let il = func_il "int f(int a, int b) { return a && b; }" "f" in
  check_contains "if for &&" ~needle:"if (a)" il;
  let il2 = func_il "int f(int a, int b) { return a || b; }" "f" in
  check_contains "if for ||" ~needle:"if (a)" il2

let logical_semantics () =
  let src =
    {|int count;
      int bump() { count++; return 1; }
      int main() {
        int r;
        count = 0;
        r = 0 && bump();   /* bump must not run */
        r = 1 || bump();   /* bump must not run */
        r = 1 && bump();   /* bump runs */
        printf("%d %d\n", count, r);
        return 0;
      }|}
  in
  Alcotest.(check string) "short circuit" "1 1\n" (interp_output (compile src))

let conditional_operator () =
  let src =
    {|int main() {
        int x;
        float f;
        x = 1 ? 10 : 20;
        f = x > 5 ? 0.5f : 1.5f;
        printf("%d %g %d\n", x, f, 0 ? 1 : 2);
        return 0;
      }|}
  in
  Alcotest.(check string) "?:" "10 0.5 2\n" (interp_output (compile src))

let embedded_assignment () =
  (* a = v = b through a temporary: v written once (§4's volatile story) *)
  let src =
    {|int main() {
        int a, v, b;
        b = 7;
        a = v = b;
        printf("%d %d\n", a, v);
        return 0;
      }|}
  in
  Alcotest.(check string) "chained =" "7 7\n" (interp_output (compile src))

let assignment_value_uses_temp () =
  let il = func_il "int f(int b) { int a, v; a = v = b; return a; }" "f" in
  (* v = temp; a = temp — not a = v (v is never read) *)
  check_contains "temp binds rhs" ~needle:"temp_" il

let for_becomes_while () =
  let il =
    func_il "int f(int n) { int i, s; s = 0; for (i = 0; i < n; i++) s += i; return s; }"
      "f"
  in
  check_contains "for is a while loop" ~needle:"while (i < n)" il

let condition_side_effects_duplicated () =
  (* while ((SL, E)): SL appears before the loop and at the bottom of the
     body *)
  let src = "int f(int n) { int s; s = 0; while (n--) s++; return s; }" in
  let il = func_il src "f" in
  check_contains "while on temp" ~needle:"while" il;
  (* semantics: n-- evaluated once per test *)
  let out =
    interp_output
      (compile
         "int f(int n) { int s; s = 0; while (n--) s++; return s; }\n\
          int main() { printf(\"%d %d\\n\", f(5), f(0)); return 0; }")
  in
  Alcotest.(check string) "while(n--)" "5 0\n" out

let do_while_lowering () =
  let src =
    {|int main() {
        int i, s;
        i = 0; s = 0;
        do { s += i; i++; } while (i < 5);
        /* body must run at least once even when the condition is false */
        do { s += 100; } while (0);
        printf("%d\n", s);
        return 0;
      }|}
  in
  Alcotest.(check string) "do-while" "110\n" (interp_output (compile src))

let break_continue () =
  let src =
    {|int main() {
        int i, s;
        s = 0;
        for (i = 0; i < 10; i++) {
          if (i == 3) continue;
          if (i == 6) break;
          s += i;
        }
        printf("%d %d\n", s, i);
        return 0;
      }|}
  in
  (* 0+1+2+4+5 = 12, i stops at 6 *)
  Alcotest.(check string) "break/continue" "12 6\n" (interp_output (compile src))

let compound_assignment_pointer () =
  let src =
    {|float a[10];
      int main() {
        float *p;
        int i;
        for (i = 0; i < 10; i++) a[i] = i;
        p = a;
        p += 3;
        printf("%g\n", *p);
        return 0;
      }|}
  in
  Alcotest.(check string) "p += 3 scales" "3\n" (interp_output (compile src))

let pointer_arith_forms () =
  let src =
    {|float a[10];
      int main() {
        float *p, *q;
        int i;
        for (i = 0; i < 10; i++) a[i] = 2 * i;
        p = &a[2];
        q = p + 3;
        printf("%g %g %d %g\n", *q, *(a + 7), q - p, p[-1]);
        return 0;
      }|}
  in
  Alcotest.(check string) "pointer arithmetic" "10 14 3 2\n"
    (interp_output (compile src))

let preincrement_value () =
  let src =
    {|int main() {
        int i, a, b;
        i = 5;
        a = ++i;
        b = i++;
        printf("%d %d %d\n", a, b, i);
        return 0;
      }|}
  in
  Alcotest.(check string) "pre/post" "6 6 7\n" (interp_output (compile src))

let incdec_on_memory () =
  let src =
    {|int arr[3];
      int main() {
        int *p;
        arr[1] = 10;
        p = &arr[1];
        (*p)++;
        ++*p;
        printf("%d\n", arr[1]);
        return 0;
      }|}
  in
  Alcotest.(check string) "memory ++" "12\n" (interp_output (compile src))

let volatile_preserved () =
  let src =
    "volatile int status; int f() { return status; }"
  in
  let prog = compile src in
  let g =
    List.find
      (fun (g : Vpc.Il.Prog.global) -> g.gvar.Vpc.Il.Var.name = "status")
      (Vpc.Il.Prog.globals_list prog)
  in
  Alcotest.(check bool) "volatile flag" true g.gvar.volatile

let volatile_loop_not_removed () =
  (* the paper's keyboard_status example: the loop must keep re-reading *)
  let src =
    {|volatile int keyboard_status;
      int main() {
        keyboard_status = 0;
        while (!keyboard_status);
        return keyboard_status;
      }|}
  in
  let prog = compile ~options:Vpc.o3 src in
  (* with a volatile hook that flips after a few reads, the loop exits *)
  let reads = ref 0 in
  let hook (v : Vpc.Il.Var.t) =
    if v.name = "keyboard_status" then begin
      incr reads;
      if !reads > 3 then Some (Vpc.Il.Interp.V_int 1) else Some (V_int 0)
    end
    else None
  in
  let r = Vpc.Il.Interp.run ~on_volatile_read:hook prog in
  Alcotest.(check bool) "loop exited after flip" true
    (r.return_value = Vpc.Il.Interp.V_int 1);
  Alcotest.(check bool) "read multiple times" true (!reads > 3)

let string_literals_pooled () =
  let prog =
    compile
      {|int main() { printf("dup"); printf("dup"); printf("other"); return 0; }|}
  in
  let strs =
    List.filter
      (fun (g : Vpc.Il.Prog.global) ->
        match g.ginit with Vpc.Il.Prog.Init_string _ -> true | _ -> false)
      (Vpc.Il.Prog.globals_list prog)
  in
  Alcotest.(check int) "two pooled strings" 2 (List.length strs)

let multidim_arrays () =
  let src =
    {|float m[3][4];
      int main() {
        int i, j;
        for (i = 0; i < 3; i++)
          for (j = 0; j < 4; j++)
            m[i][j] = i * 10 + j;
        printf("%g %g %g\n", m[0][0], m[2][3], m[1][2]);
        return 0;
      }|}
  in
  Alcotest.(check string) "2d arrays" "0 23 12\n" (interp_output (compile src))

let array_in_struct () =
  (* §10: "arrays embedded within structures" *)
  let src =
    {|struct obj { int id; float pos[3]; };
      struct obj o[2];
      int main() {
        o[1].id = 7;
        o[1].pos[2] = 2.5;
        o[0].pos[0] = 1.0;
        printf("%d %g %g\n", o[1].id, o[1].pos[2], o[0].pos[0]);
        return 0;
      }|}
  in
  Alcotest.(check string) "array in struct" "7 2.5 1\n"
    (interp_output (compile src))

let tests =
  [
    Alcotest.test_case "post-increment shape (§5.3)" `Quick post_increment_shape;
    Alcotest.test_case "&&/|| become control flow" `Quick logical_ops_become_control_flow;
    Alcotest.test_case "short-circuit semantics" `Quick logical_semantics;
    Alcotest.test_case "?: lowering" `Quick conditional_operator;
    Alcotest.test_case "embedded assignment" `Quick embedded_assignment;
    Alcotest.test_case "assignment temp (§4)" `Quick assignment_value_uses_temp;
    Alcotest.test_case "for becomes while" `Quick for_becomes_while;
    Alcotest.test_case "condition side effects" `Quick condition_side_effects_duplicated;
    Alcotest.test_case "do-while" `Quick do_while_lowering;
    Alcotest.test_case "break/continue" `Quick break_continue;
    Alcotest.test_case "pointer compound assignment" `Quick compound_assignment_pointer;
    Alcotest.test_case "pointer arithmetic" `Quick pointer_arith_forms;
    Alcotest.test_case "pre/post increment" `Quick preincrement_value;
    Alcotest.test_case "++ on memory" `Quick incdec_on_memory;
    Alcotest.test_case "volatile flag" `Quick volatile_preserved;
    Alcotest.test_case "volatile loop" `Quick volatile_loop_not_removed;
    Alcotest.test_case "string pooling" `Quick string_literals_pooled;
    Alcotest.test_case "multidimensional arrays" `Quick multidim_arrays;
    Alcotest.test_case "arrays in structs (§10)" `Quick array_in_struct;
  ]
