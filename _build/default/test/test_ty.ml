(* Type layout tests: sizes, alignment, struct field offsets, decay. *)

open Vpc.Il

let env () : Ty.struct_env = Hashtbl.create 4

let scalar_sizes () =
  let e = env () in
  List.iter
    (fun (ty, size, align) ->
      Alcotest.(check int) (Ty.to_string ty ^ " size") size (Ty.sizeof e ty);
      Alcotest.(check int) (Ty.to_string ty ^ " align") align (Ty.alignof e ty))
    [
      (Ty.Char, 1, 1);
      (Ty.Int, 4, 4);
      (Ty.Float, 4, 4);
      (Ty.Double, 8, 8);
      (Ty.Ptr Ty.Double, 4, 4);
      (Ty.Array (Ty.Int, Some 10), 40, 4);
      (Ty.Array (Ty.Array (Ty.Float, Some 4), Some 4), 64, 4);
    ]

let struct_layout_padding () =
  let e = env () in
  Hashtbl.replace e "s"
    { Ty.tag = "s"; fields = [ ("c", Ty.Char); ("d", Ty.Double); ("i", Ty.Int) ] };
  (* char at 0, double aligned to 8, int at 16, total padded to 24 *)
  Alcotest.(check int) "c offset" 0 (fst (Ty.field_offset e "s" "c"));
  Alcotest.(check int) "d offset" 8 (fst (Ty.field_offset e "s" "d"));
  Alcotest.(check int) "i offset" 16 (fst (Ty.field_offset e "s" "i"));
  Alcotest.(check int) "size with tail padding" 24 (Ty.sizeof e (Ty.Struct "s"));
  Alcotest.(check int) "align" 8 (Ty.alignof e (Ty.Struct "s"))

let struct_with_array_field () =
  let e = env () in
  Hashtbl.replace e "v"
    { Ty.tag = "v"; fields = [ ("id", Ty.Int); ("pos", Ty.Array (Ty.Float, Some 3)) ] };
  Alcotest.(check int) "pos offset" 4 (fst (Ty.field_offset e "v" "pos"));
  Alcotest.(check int) "size" 16 (Ty.sizeof e (Ty.Struct "v"))

let decay_rules () =
  Alcotest.(check bool) "array decays" true
    (Ty.equal (Ty.decay (Ty.Array (Ty.Float, Some 8))) (Ty.Ptr Ty.Float));
  Alcotest.(check bool) "scalar unchanged" true
    (Ty.equal (Ty.decay Ty.Int) Ty.Int);
  Alcotest.(check bool) "ptr unchanged" true
    (Ty.equal (Ty.decay (Ty.Ptr Ty.Int)) (Ty.Ptr Ty.Int))

let common_arith_rules () =
  Alcotest.(check bool) "int+int" true (Ty.common_arith Ty.Int Ty.Char = Ty.Int);
  Alcotest.(check bool) "float wins" true
    (Ty.common_arith Ty.Int Ty.Float = Ty.Float);
  Alcotest.(check bool) "double wins" true
    (Ty.common_arith Ty.Float Ty.Double = Ty.Double)

let ty_sexp_roundtrip () =
  List.iter
    (fun ty ->
      let back = Ty.of_sexp (Ty.to_sexp ty) in
      if not (Ty.equal ty back) then
        Alcotest.failf "type %s did not roundtrip" (Ty.to_string ty))
    [
      Ty.Void; Ty.Int; Ty.Ptr (Ty.Ptr Ty.Float);
      Ty.Array (Ty.Struct "node", Some 16);
      Ty.Array (Ty.Char, None);
      Ty.Func (Ty.Float, [ Ty.Ptr Ty.Float; Ty.Int ]);
    ]

let tests =
  [
    Alcotest.test_case "scalar sizes" `Quick scalar_sizes;
    Alcotest.test_case "struct padding" `Quick struct_layout_padding;
    Alcotest.test_case "array field" `Quick struct_with_array_field;
    Alcotest.test_case "decay" `Quick decay_rules;
    Alcotest.test_case "common arith" `Quick common_arith_rules;
    Alcotest.test_case "type sexp roundtrip" `Quick ty_sexp_roundtrip;
  ]
