(* Scalar analysis tests: CFG construction, reaching definitions,
   liveness, constant propagation with unreachable-code elimination (§8),
   dead-code elimination. *)

open Helpers
open Vpc

let prog_func src name =
  let prog = Helpers.compile src in
  (prog, Il.Prog.func_exn prog name)

let cfg_structure () =
  let _, f =
    prog_func
      "int f(int n) { int s; s = 0; if (n > 0) s = 1; else s = 2; return s; }"
      "f"
  in
  let cfg = Analysis.Cfg.build f in
  (* entry has one successor; exit has at least one predecessor *)
  Alcotest.(check int) "entry out-degree" 1
    (List.length (Analysis.Cfg.succs cfg Analysis.Cfg.entry_id));
  Alcotest.(check bool) "exit reachable" true
    (Analysis.Cfg.preds cfg Analysis.Cfg.exit_id <> []);
  (* the If node must have two successors *)
  let if_node =
    List.find_map
      (fun (s : Il.Stmt.t) ->
        match s.desc with Il.Stmt.If _ -> Some s.id | _ -> None)
      (Il.Func.all_stmts f)
  in
  match if_node with
  | Some id ->
      Alcotest.(check int) "if out-degree" 2
        (List.length (Analysis.Cfg.succs cfg id))
  | None -> Alcotest.fail "no if statement found"

let cfg_loop_back_edge () =
  let _, f =
    prog_func "int f(int n) { int s; s = 0; while (n > 0) { s++; n--; } return s; }" "f"
  in
  let cfg = Analysis.Cfg.build f in
  let while_id =
    List.find_map
      (fun (s : Il.Stmt.t) ->
        match s.desc with Il.Stmt.While _ -> Some s.id | _ -> None)
      (Il.Func.all_stmts f)
  in
  match while_id with
  | Some id ->
      (* the loop header has (at least) two predecessors: entry path and
         back edge *)
      Alcotest.(check bool) "back edge" true
        (List.length (Analysis.Cfg.preds cfg id) >= 2)
  | None -> Alcotest.fail "no while loop"

let branch_into_detection () =
  let _, f =
    prog_func
      {|int f(int n) {
          int s;
          s = 0;
          if (n > 10) goto inside;
          while (n > 0) {
          inside:
            s++;
            n--;
          }
          return s;
        }|}
      "f"
  in
  let body =
    List.find_map
      (fun (s : Il.Stmt.t) ->
        match s.desc with Il.Stmt.While (_, _, b) -> Some b | _ -> None)
      (Il.Func.all_stmts f)
  in
  match body with
  | Some b ->
      Alcotest.(check bool) "branch into loop detected" true
        (Analysis.Cfg.has_branch_into f b)
  | None -> Alcotest.fail "no while loop"

let reaching_unique_def () =
  let prog, f =
    prog_func "int f(int a) { int x; x = a + 1; return x; }" "f"
  in
  let ud = Analysis.Reaching.build ~prog f in
  let ret =
    List.find
      (fun (s : Il.Stmt.t) ->
        match s.desc with Il.Stmt.Return _ -> true | _ -> false)
      (Il.Func.all_stmts f)
  in
  let x_id =
    List.find_map
      (fun (v : Il.Var.t) -> if v.name = "x" then Some v.id else None)
      (Il.Func.locals f)
    |> Option.get
  in
  match Analysis.Reaching.unique_def ud ~stmt_id:ret.id ~var:x_id with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a unique reaching def for x"

let reaching_merge () =
  let prog, f =
    prog_func
      "int f(int a) { int x; if (a) x = 1; else x = 2; return x; }" "f"
  in
  let ud = Analysis.Reaching.build ~prog f in
  let ret =
    List.find
      (fun (s : Il.Stmt.t) ->
        match s.desc with Il.Stmt.Return _ -> true | _ -> false)
      (Il.Func.all_stmts f)
  in
  let x_id =
    List.find_map
      (fun (v : Il.Var.t) -> if v.name = "x" then Some v.id else None)
      (Il.Func.locals f)
    |> Option.get
  in
  (match Analysis.Reaching.reaching ud ~stmt_id:ret.id ~var:x_id with
  | Analysis.Reaching.Defs ds ->
      Alcotest.(check int) "two defs reach the return" 2
        (List.length
           (List.filter
              (fun d -> d.Analysis.Reaching.d_stmt <> Analysis.Reaching.entry_def_stmt)
              ds))
  | Analysis.Reaching.Unknown -> Alcotest.fail "unexpected Unknown");
  Alcotest.(check bool) "not unique" true
    (Analysis.Reaching.unique_def ud ~stmt_id:ret.id ~var:x_id = None)

let reaching_memory_weak_def () =
  (* a store through a pointer clobbers address-taken variables *)
  let prog, f =
    prog_func
      "int f(int *p) { int x; x = 5; *p = 9; return x + (int)&x; }" "f"
  in
  let ud = Analysis.Reaching.build ~prog f in
  let ret =
    List.find
      (fun (s : Il.Stmt.t) ->
        match s.desc with Il.Stmt.Return _ -> true | _ -> false)
      (Il.Func.all_stmts f)
  in
  let x_id =
    List.find_map
      (fun (v : Il.Var.t) -> if v.name = "x" then Some v.id else None)
      (Il.Func.locals f)
    |> Option.get
  in
  Alcotest.(check bool) "x is unknown after *p store" true
    (Analysis.Reaching.reaching ud ~stmt_id:ret.id ~var:x_id
     = Analysis.Reaching.Unknown)

let const_prop_basic () =
  let src = "int f() { int a, b; a = 5; b = a + 2; return b * a; }" in
  let il = func_il ~options:Vpc.o1 src "f" in
  check_contains "fully folded" ~needle:"return 35;" il

let const_prop_through_branches () =
  let src =
    {|int f() {
        int a, b;
        a = 1;
        if (a) b = 10; else b = 20;
        return b;
      }|}
  in
  let il = func_il ~options:Vpc.o1 src "f" in
  check_contains "branch folded" ~needle:"return 10;" il;
  check_not_contains "no if left" ~needle:"if" il

let const_prop_address_constants () =
  (* §9: "the vectorizer is safe in propagating address constants" *)
  let src =
    {|float arr[10];
      float *f() { float *p; p = &arr[2]; return p; }|}
  in
  let il = func_il ~options:Vpc.o1 src "f" in
  check_contains "address constant propagated" ~needle:"return &arr + 8;" il

let unreachable_after_constant_branch () =
  (* §8's inlined daxpy(α=0) pattern *)
  let src =
    {|float x;
      int f() {
        float a;
        a = 0.0;
        if (a == 0.0) return 1;
        x = x + 3.0;   /* unreachable */
        return 2;
      }|}
  in
  let il = func_il ~options:Vpc.o1 src "f" in
  check_contains "kept the taken arm" ~needle:"return 1;" il;
  check_not_contains "dead float add removed" ~needle:"3.0" il

let zero_trip_loop_removed () =
  let src =
    {|int f() {
        int i, s;
        s = 0;
        for (i = 0; i < 0; i++) s += i;
        return s;
      }|}
  in
  let il = func_il ~options:Vpc.o1 src "f" in
  check_not_contains "loop deleted" ~needle:"while" il;
  check_not_contains "no do loop" ~needle:"do fortran" il

let dce_removes_dead_assign () =
  let src = "int f(int a) { int dead; dead = a * 99; return a; }" in
  let il = func_il ~options:Vpc.o1 src "f" in
  check_not_contains "dead assign removed" ~needle:"99" il

let dce_keeps_volatile_and_memory () =
  let src =
    {|volatile int port;
      int f(int *p) {
        port = 1;     /* volatile store: must stay */
        *p = 2;       /* memory store: must stay */
        return 0;
      }|}
  in
  let il = func_il ~options:Vpc.o1 src "f" in
  check_contains "volatile store kept" ~needle:"port = 1;" il;
  check_contains "memory store kept" ~needle:"*p = 2;" il

let dce_semantics_preserved () =
  Helpers.assert_all_configs_agree "dce program"
    {|int g;
      int f(int n) {
        int unused, acc;
        unused = n * n;
        acc = 0;
        while (n > 0) { acc += n; n--; unused = acc; }
        g = acc;
        return acc;
      }
      int main() { printf("%d %d\n", f(10), g); return 0; }|}

let liveness_loop_carried () =
  let _, f =
    prog_func "int f(int n) { int s; s = 0; while (n) { s = s + n; n--; } return s; }"
      "f"
  in
  let live = Analysis.Liveness.build f in
  (* s is live out of its update inside the loop (read next iteration) *)
  let s_update =
    List.find_map
      (fun (st : Il.Stmt.t) ->
        match st.desc with
        | Il.Stmt.Assign (Il.Stmt.Lvar _, rhs)
          when List.length (Il.Expr.read_vars rhs) = 2 ->
            Some st.id
        | _ -> None)
      (Il.Func.all_stmts f)
  in
  let s_id =
    List.find_map
      (fun (v : Il.Var.t) -> if v.name = "s" then Some v.id else None)
      (Il.Func.locals f)
    |> Option.get
  in
  match s_update with
  | Some id ->
      Alcotest.(check bool) "s live out of its loop update" true
        (Analysis.Liveness.live_out_of live ~stmt_id:id ~var:s_id)
  | None -> Alcotest.fail "did not find the s update"

let unreachable_postpass () =
  let src =
    {|int f(int n) {
        if (n) goto out;
        return 1;
      out:
        return 2;
      }|}
  in
  (* code after 'return 1' up to the label is live; code after a goto is
     dead — construct one via goto chain *)
  let src2 =
    {|int g() {
        goto skip;
        return 111;
      skip:
        return 222;
      }
      int main() { printf("%d\n", g()); return 0; }|}
  in
  ignore src;
  let il = func_il ~options:Vpc.o1 src2 "g" in
  check_not_contains "dead return dropped" ~needle:"111" il;
  Alcotest.(check string) "semantics" "222\n" (interp_output (Helpers.compile src2))

let tests =
  [
    Alcotest.test_case "cfg if structure" `Quick cfg_structure;
    Alcotest.test_case "cfg loop back edge" `Quick cfg_loop_back_edge;
    Alcotest.test_case "branch-into detection" `Quick branch_into_detection;
    Alcotest.test_case "reaching unique def" `Quick reaching_unique_def;
    Alcotest.test_case "reaching merge" `Quick reaching_merge;
    Alcotest.test_case "weak defs via memory" `Quick reaching_memory_weak_def;
    Alcotest.test_case "const prop basic" `Quick const_prop_basic;
    Alcotest.test_case "const prop branch folding" `Quick const_prop_through_branches;
    Alcotest.test_case "address constants (§9)" `Quick const_prop_address_constants;
    Alcotest.test_case "unreachable after fold (§8)" `Quick unreachable_after_constant_branch;
    Alcotest.test_case "zero-trip loop removed" `Quick zero_trip_loop_removed;
    Alcotest.test_case "dce dead assign" `Quick dce_removes_dead_assign;
    Alcotest.test_case "dce volatile/memory" `Quick dce_keeps_volatile_and_memory;
    Alcotest.test_case "dce semantics" `Quick dce_semantics_preserved;
    Alcotest.test_case "liveness loop carried" `Quick liveness_loop_carried;
    Alcotest.test_case "unreachable postpass (§8)" `Quick unreachable_postpass;
  ]
