(* Parser tests: declarators, precedence, statement forms, and error
   reporting.  Shapes are checked through the lowered IL text (the parser
   and lowering are exercised together; test_lower checks the lowering
   rules themselves). *)

open Helpers

let simple_types () =
  let il =
    func_il
      "int f(float x, double d, char c, int *p, float a[10]) { return 0; }" "f"
  in
  check_contains "param types" ~needle:"int f(float x, double d, char c, int* p, float* a)" il

let declarator_arrays () =
  let prog = compile "float m[4][4]; int v[3]; char s[10];" in
  let g name =
    List.find
      (fun (g : Vpc.Il.Prog.global) -> g.gvar.Vpc.Il.Var.name = name)
      (Vpc.Il.Prog.globals_list prog)
  in
  Alcotest.(check string) "2d array" "float[4][4]"
    (Vpc.Il.Ty.to_string (g "m").gvar.ty);
  Alcotest.(check string) "1d int" "int[3]" (Vpc.Il.Ty.to_string (g "v").gvar.ty);
  Alcotest.(check string) "char buf" "char[10]"
    (Vpc.Il.Ty.to_string (g "s").gvar.ty)

let pointer_declarators () =
  let prog = compile "int *p; int **pp; float *q;" in
  let g name =
    List.find
      (fun (g : Vpc.Il.Prog.global) -> g.gvar.Vpc.Il.Var.name = name)
      (Vpc.Il.Prog.globals_list prog)
  in
  Alcotest.(check string) "ptr" "int*" (Vpc.Il.Ty.to_string (g "p").gvar.ty);
  Alcotest.(check string) "ptr ptr" "int**" (Vpc.Il.Ty.to_string (g "pp").gvar.ty)

let precedence () =
  (* 1 + 2 * 3 must evaluate to 7, not 9; && binds tighter than || *)
  let src =
    {|int main() {
        printf("%d %d %d %d\n", 1 + 2 * 3, (1 + 2) * 3, 1 || 0 && 0, 10 - 4 - 3);
        return 0;
      }|}
  in
  Alcotest.(check string) "precedence" "7 9 1 3\n" (interp_output (compile src))

let sizeof_forms () =
  let src =
    {|struct pt { float x; float y; float z; };
      double d[5];
      int main() {
        struct pt p;
        printf("%d %d %d %d %d\n", sizeof(int), sizeof(struct pt), sizeof d,
               sizeof(double), sizeof p);
        return 0;
      }|}
  in
  Alcotest.(check string) "sizeof" "4 12 40 8 12\n" (interp_output (compile src))

let typedefs () =
  let src =
    {|typedef float real;
      typedef real vec4[4];
      int main() {
        vec4 v;
        real s;
        s = 2;
        v[0] = s * 3;
        printf("%g %d\n", v[0], sizeof(vec4));
        return 0;
      }|}
  in
  Alcotest.(check string) "typedef" "6 16\n" (interp_output (compile src))

let implied_int_main () =
  (* K&R style: main() with no return type *)
  let src = "main() { printf(\"ok\\n\"); return 0; }" in
  Alcotest.(check string) "K&R main" "ok\n" (interp_output (compile src))

let struct_members () =
  let src =
    {|struct vec { float x; float y; };
      struct vec g;
      int main() {
        struct vec v;
        struct vec *p;
        v.x = 1.5; v.y = 2.5;
        p = &v;
        g.x = p->x + v.y;
        printf("%g %g %g\n", v.x, p->y, g.x);
        return 0;
      }|}
  in
  Alcotest.(check string) "members" "1.5 2.5 4\n" (interp_output (compile src))

let switch_stmt () =
  let src =
    {|int classify(int n) {
        switch (n) {
        case 0: return 100;
        case 1:
        case 2: return 200;
        default: return 300;
        }
      }
      int main() {
        printf("%d %d %d %d\n", classify(0), classify(1), classify(2), classify(9));
        return 0;
      }|}
  in
  Alcotest.(check string) "switch" "100 200 200 300\n" (interp_output (compile src))

let switch_fallthrough_break () =
  let src =
    {|int main() {
        int n, acc;
        acc = 0;
        for (n = 0; n < 4; n++) {
          switch (n) {
          case 0: acc += 1;      /* falls through */
          case 1: acc += 10; break;
          case 2: acc += 100; break;
          default: acc += 1000;
          }
        }
        printf("%d\n", acc);
        return 0;
      }|}
  in
  (* n=0: 1+10; n=1: 10; n=2: 100; n=3: 1000 -> 1121 *)
  Alcotest.(check string) "fallthrough" "1121\n" (interp_output (compile src))

let goto_labels () =
  let src =
    {|int main() {
        int i;
        i = 0;
      again:
        i++;
        if (i < 5) goto again;
        printf("%d\n", i);
        return 0;
      }|}
  in
  Alcotest.(check string) "goto" "5\n" (interp_output (compile src))

let parse_errors () =
  List.iter
    (fun src ->
      match compile src with
      | exception Vpc.Support.Diag.Error_exn _ -> ()
      | _ -> Alcotest.failf "expected a parse/sema error for %S" src)
    [
      "int main() { return 0 }";        (* missing ; *)
      "int main() { x = 1; return 0; }";(* undeclared *)
      "int f(int, int);; int main() { f(1); return f(1,2); }"; (* arity *)
      "struct s { int x; }; int main() { struct s v; return v.y; }";
      "int main() { int a[3]; a = 0; return 0; }"; (* array assignment *)
      "int main() { return *3.0; }";    (* deref non-pointer *)
      "float f() { goto nowhere; }";
    ]

let global_initializers () =
  let src =
    {|int scalars = 42;
      float farr[4] = { 1.0, 2.0, 3.5 };
      char msg[] = "hi";
      int iarr[] = { 7, 8, 9 };
      int main() {
        printf("%d %g %g %s %d %d\n", scalars, farr[0], farr[3], msg,
               iarr[2], sizeof(iarr));
        return 0;
      }|}
  in
  Alcotest.(check string) "global inits" "42 1 0 hi 9 12\n"
    (interp_output (compile src))

let local_initializers () =
  let src =
    {|int main() {
        int a[4] = { 1, 2, 3, 4 };
        float x = 2.5;
        char s[6] = "hey";
        printf("%d %g %s\n", a[0] + a[3], x, s);
        return 0;
      }|}
  in
  Alcotest.(check string) "local inits" "5 2.5 hey\n" (interp_output (compile src))

let comma_in_for () =
  let src =
    {|int main() {
        int i, j, s;
        s = 0;
        for (i = 0, j = 10; i < j; i++, j--) s++;
        printf("%d\n", s);
        return 0;
      }|}
  in
  Alcotest.(check string) "comma" "5\n" (interp_output (compile src))

let enums () =
  let src =
    {|enum color { RED, GREEN = 5, BLUE };
      enum color fav = BLUE;
      int main() {
        enum color c;
        c = GREEN;
        printf("%d %d %d %d %d\n", RED, GREEN, BLUE, c, fav);
        return 0;
      }|}
  in
  Alcotest.(check string) "enum values" "0 5 6 5 6\n"
    (interp_output (compile src));
  (* enumerators are constants: they fold and can size arrays *)
  let src2 =
    {|enum { N = 8 };
      float a[N];
      int main() { printf("%d\n", sizeof(a) / sizeof(a[0])); return 0; }|}
  in
  Alcotest.(check string) "enum-sized array" "8\n" (interp_output (compile src2))


let tests =
  [
    Alcotest.test_case "simple types" `Quick simple_types;
    Alcotest.test_case "array declarators" `Quick declarator_arrays;
    Alcotest.test_case "pointer declarators" `Quick pointer_declarators;
    Alcotest.test_case "precedence" `Quick precedence;
    Alcotest.test_case "sizeof" `Quick sizeof_forms;
    Alcotest.test_case "typedef" `Quick typedefs;
    Alcotest.test_case "K&R main" `Quick implied_int_main;
    Alcotest.test_case "struct members" `Quick struct_members;
    Alcotest.test_case "switch" `Quick switch_stmt;
    Alcotest.test_case "switch fallthrough" `Quick switch_fallthrough_break;
    Alcotest.test_case "goto" `Quick goto_labels;
    Alcotest.test_case "parse errors" `Quick parse_errors;
    Alcotest.test_case "global initializers" `Quick global_initializers;
    Alcotest.test_case "local initializers" `Quick local_initializers;
    Alcotest.test_case "comma in for" `Quick comma_in_for;
    Alcotest.test_case "enums" `Quick enums;
  ]
