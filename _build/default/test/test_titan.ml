(* Titan simulator tests: value agreement with the IL interpreter, timing
   model sanity (scheduling modes are ordered, vectors beat scalars,
   processors help parallel loops), volatile handling, metrics. *)

open Helpers
open Vpc.Titan

let cfg ?(procs = 1) ?(sched = Machine.Overlap_full) () =
  { Machine.default_config with procs; sched }

let cycles ?procs ?sched prog =
  (Vpc.run_titan ~config:(cfg ?procs ?sched ()) prog).Machine.metrics.cycles

let values_agree_with_interp () =
  List.iter
    (fun (name, src) -> assert_all_configs_agree name src)
    [
      ( "scalar program",
        {|int main() {
            int i, s;
            float f;
            s = 0; f = 1.0;
            for (i = 1; i <= 10; i++) { s += i * i; f = f * 1.1f; }
            printf("%d %g\n", s, f);
            return 0;
          }|} );
      ( "calls and memory",
        {|int sq(int x) { return x * x; }
          int buf[8];
          int main() {
            int i;
            for (i = 0; i < 8; i++) buf[i] = sq(i + 1);
            printf("%d %d\n", buf[0], buf[7]);
            return 0;
          }|} );
      ( "char and double",
        {|char s[12];
          int main() {
            double d;
            int i;
            d = 1.0;
            for (i = 0; i < 10; i++) { s[i] = 'a' + i; d = d * 2.0; }
            s[10] = 0;
            printf("%s %g\n", s, d);
            return 0;
          }|} );
    ]

let sched_modes_are_ordered () =
  (* more scheduling freedom can only reduce cycles *)
  let src =
    {|float a[256], b[256], c[256];
      int main() {
        int i;
        for (i = 0; i < 256; i++) { b[i] = i; c[i] = 2 * i; }
        for (i = 0; i < 256; i++) a[i] = b[i] * 1.5f + c[i];
        return 0;
      }|}
  in
  let prog = compile ~options:Vpc.o0 src in
  let seq = cycles ~sched:Machine.Sequential prog in
  let cons = cycles ~sched:Machine.Overlap_conservative prog in
  let full = cycles ~sched:Machine.Overlap_full prog in
  Alcotest.(check bool)
    (Printf.sprintf "seq(%d) >= conservative(%d)" seq cons)
    true (seq >= cons);
  Alcotest.(check bool)
    (Printf.sprintf "conservative(%d) >= full(%d)" cons full)
    true (cons >= full)

let vector_beats_scalar () =
  let src =
    {|float a[512], b[512], c[512];
      int main() {
        int i;
        for (i = 0; i < 512; i++) a[i] = b[i] + c[i] * 2.0f;
        return 0;
      }|}
  in
  let scalar = compile ~options:Vpc.o0 src in
  let vector = compile ~options:Vpc.o2 src in
  (* the paper's own comparison: naive scalar code vs the vector
     compilation (running O0 code under the full-overlap schedule would
     presume dependence information the compiler never produced) *)
  let sc = cycles ~sched:Machine.Sequential scalar and vc = cycles vector in
  Alcotest.(check bool)
    (Printf.sprintf "vector (%d) at least 3x faster than scalar (%d)" vc sc)
    true (vc * 3 < sc)

let processors_help_parallel_loops () =
  let src =
    {|float a[1024], b[1024];
      int main() {
        int i;
        for (i = 0; i < 1024; i++) a[i] = b[i] * 3.0f + 1.0f;
        return 0;
      }|}
  in
  let prog = compile ~options:Vpc.o2 src in
  let c1 = cycles ~procs:1 prog in
  let c2 = cycles ~procs:2 prog in
  let c4 = cycles ~procs:4 prog in
  Alcotest.(check bool) (Printf.sprintf "2 procs help (%d -> %d)" c1 c2) true
    (c2 < c1);
  Alcotest.(check bool) (Printf.sprintf "4 procs help more (%d -> %d)" c2 c4)
    true (c4 <= c2)

let processors_do_not_help_serial_code () =
  let src =
    {|int main() {
        int i, s;
        s = 1;
        for (i = 0; i < 100; i++) s = s * 3 + 1;
        printf("%d\n", s);
        return 0;
      }|}
  in
  let prog = compile ~options:Vpc.o1 src in
  let c1 = cycles ~procs:1 prog in
  let c4 = cycles ~procs:4 prog in
  Alcotest.(check int) "serial code unchanged by procs" c1 c4

let fp_op_counting () =
  let src =
    {|float a[100], b[100];
      int main() {
        int i;
        for (i = 0; i < 100; i++) a[i] = b[i] * 2.0f + 1.0f;
        return 0;
      }|}
  in
  (* 2 fp ops per element, whatever the compilation strategy *)
  List.iter
    (fun options ->
      let prog = compile ~options src in
      let r = Vpc.run_titan ~config:(cfg ()) prog in
      Alcotest.(check int) "200 fp ops" 200 r.Machine.metrics.fp_ops)
    [ Vpc.o0; Vpc.o2 ]

let vector_metrics () =
  let src =
    {|float a[100], b[100];
      int main() {
        int i;
        for (i = 0; i < 100; i++) a[i] = b[i] + 1.0f;
        return 0;
      }|}
  in
  let prog = compile ~options:Vpc.o2 src in
  let r = Vpc.run_titan ~config:(cfg ()) prog in
  Alcotest.(check bool) "vector instructions issued" true
    (r.Machine.metrics.vector_insts > 0);
  Alcotest.(check bool) "vector elements counted" true
    (r.Machine.metrics.vector_elems >= 200);
  Alcotest.(check bool) "parallel region seen" true
    (r.Machine.metrics.parallel_regions >= 1)

let volatile_not_cached_in_registers () =
  (* a volatile variable read twice must issue two loads *)
  let src =
    {|volatile int v;
      int main() {
        int a, b;
        v = 3;
        a = v;
        b = v;
        printf("%d\n", a + b);
        return 0;
      }|}
  in
  let prog = compile ~options:Vpc.o3 src in
  let r = Vpc.run_titan ~config:(cfg ()) prog in
  Alcotest.(check string) "value" "6\n" r.Machine.stdout_text;
  (* at least 2 loads + 1 store on v, plus printf string accesses *)
  Alcotest.(check bool) "memory traffic for volatile" true
    (r.Machine.metrics.mem_ops >= 3)

let frame_reuse_recursion () =
  let src =
    {|int depth(int n) { return n == 0 ? 0 : 1 + depth(n - 1); }
      int main() { printf("%d\n", depth(200)); return 0; }|}
  in
  let prog = compile ~options:Vpc.o1 src in
  Alcotest.(check string) "deep recursion" "200\n"
    (titan_output ~config:(cfg ()) prog)

let mflops_sanity () =
  let src =
    {|float a[4096], b[4096], c[4096];
      int main() {
        int i;
        for (i = 0; i < 4096; i++) a[i] = b[i] + c[i];
        return 0;
      }|}
  in
  let scalar = Vpc.run_titan ~config:(cfg ~sched:Machine.Sequential ())
      (compile ~options:Vpc.o0 src) in
  let vec = Vpc.run_titan ~config:(cfg ~procs:2 ())
      (compile ~options:Vpc.o2 src) in
  Alcotest.(check bool)
    (Printf.sprintf "scalar %.2f < vector %.2f mflops" scalar.Machine.mflops_rate
       vec.Machine.mflops_rate)
    true
    (scalar.Machine.mflops_rate < vec.Machine.mflops_rate);
  Alcotest.(check bool) "mflops below peak (16 per proc)" true
    (vec.Machine.mflops_rate < 33.0)

let infinite_loop_guard () =
  let src = "int main() { for (;;); return 0; }" in
  let prog = compile ~options:Vpc.o0 src in
  match
    Vpc.run_titan ~config:{ (cfg ()) with max_insts = 10_000 } prog
  with
  | exception Machine.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected an instruction-budget error"

let tests =
  [
    Alcotest.test_case "values agree with interp" `Quick values_agree_with_interp;
    Alcotest.test_case "sched modes ordered" `Quick sched_modes_are_ordered;
    Alcotest.test_case "vector beats scalar" `Quick vector_beats_scalar;
    Alcotest.test_case "processors help" `Quick processors_help_parallel_loops;
    Alcotest.test_case "serial unaffected by procs" `Quick processors_do_not_help_serial_code;
    Alcotest.test_case "fp op counting" `Quick fp_op_counting;
    Alcotest.test_case "vector metrics" `Quick vector_metrics;
    Alcotest.test_case "volatile loads" `Quick volatile_not_cached_in_registers;
    Alcotest.test_case "recursion frames" `Quick frame_reuse_recursion;
    Alcotest.test_case "mflops sanity" `Quick mflops_sanity;
    Alcotest.test_case "instruction budget" `Quick infinite_loop_guard;
  ]
