(* While→DO conversion tests (paper §5.2, experiment E4): the conversion
   matrix — which loop shapes convert and which must be rejected. *)

open Helpers

let o1 = Vpc.o1

let converts name src fname =
  let il = func_il ~options:o1 src fname in
  check_contains (name ^ " converts") ~needle:"do fortran" il

let rejects name src fname =
  let il = func_il ~options:o1 src fname in
  check_not_contains (name ^ " must not convert") ~needle:"do fortran" il

let count_up () =
  converts "for up"
    "void f(float *a, int n) { int i; for (i = 0; i < n; i++) a[i] = i; }" "f"

let count_up_le () =
  converts "for <="
    "void f(float *a, int n) { int i; for (i = 1; i <= n; i++) a[i] = i; }" "f"

let count_down () =
  converts "for down"
    "void f(float *a, int n) { int i; for (i = n; i > 0; i--) a[i] = i; }" "f"

let count_down_ge () =
  converts "for >="
    "void f(float *a, int n) { int i; for (i = n; i >= 0; i--) a[i] = i; }" "f"

let nonzero_condition () =
  (* the paper's i = n; while (i) { ... i = temp - s; } with constant s *)
  converts "while (i) i -= 1"
    "void f(float *a, int n) { while (n) { a[n] = 1.0; n--; } }" "f"

let ne_condition () =
  converts "i != bound"
    "void f(float *a, int n) { int i; for (i = 0; i != n; i++) a[i] = 2.0; }" "f"

let symbolic_stride () =
  (* the paper's own §5.2 example: i = n; while (i) { ... i = temp - s; }
     with s a loop-invariant VARIABLE ("DO dummy = n, 1, -s") *)
  converts "symbolic stride"
    {|float a[100];
      void f(int n, int s) {
        int i, temp;
        i = n;
        while (i) {
          a[i - 1] = 1.0f;
          temp = i;
          i = temp - s;
        }
      }|}
    "f";
  List.iter
    (fun stride ->
      assert_all_configs_agree
        (Printf.sprintf "symbolic stride s=%d" stride)
        (Printf.sprintf
           {|float a[512];
             void fill(int n, int s) {
               int i, temp;
               i = n;
               while (i) {
                 a[i - 1] = (float)i;
                 temp = i;
                 i = temp - s;
               }
             }
             int main() {
               int k; float sum;
               fill(504, %d);
               sum = 0;
               for (k = 0; k < 512; k++) sum += a[k];
               printf("%%g
", sum);
               return 0;
             }|}
           stride))
    [ 1; 3; 4; 7 ]

let temp_chain_update () =
  (* update through the front end's temp chain is recognized *)
  converts "n-- through temps"
    "void f(float *p, int n) { for (; n; n--) *p++ = 0.0; }" "f"

let stride_2 () =
  converts "stride 2"
    "void f(float *a, int n) { int i; for (i = 0; i < n; i += 2) a[i] = 1.0; }"
    "f"

let reject_break () =
  rejects "break"
    {|void f(float *a, int n) {
        int i;
        for (i = 0; i < n; i++) {
          if (a[i] < 0.0) break;
          a[i] = 1.0;
        }
      }|}
    "f"

let reject_return_inside () =
  rejects "return inside"
    {|int f(float *a, int n) {
        int i;
        for (i = 0; i < n; i++) {
          if (a[i] < 0.0) return i;
          a[i] = 1.0;
        }
        return -1;
      }|}
    "f"

let reject_goto_in () =
  rejects "goto into loop"
    {|void f(float *a, int n) {
        int i;
        i = 0;
        if (n > 100) goto mid;
        for (i = 0; i < n; i++) {
        mid:
          a[i] = 1.0;
        }
      }|}
    "f"

let reject_varying_bound () =
  (* the bound changes inside the loop *)
  rejects "varying bound"
    {|void f(float *a, int n) {
        int i;
        for (i = 0; i < n; i++) {
          a[i] = 1.0;
          if (a[i] > 0.0) n--;
        }
      }|}
    "f"

let reject_conditional_update () =
  rejects "conditional update"
    {|void f(float *a, int n) {
        int i;
        i = 0;
        while (i < n) {
          a[i] = 1.0;
          if (a[i] > 0.0) i++;
        }
      }|}
    "f"

let reject_volatile_condition () =
  rejects "volatile condition"
    {|volatile int stop;
      void f(float *a) {
        int i;
        i = 0;
        while (i < stop) {
          a[i] = 1.0;
          i++;
        }
      }|}
    "f"

let reject_two_updates_is_ok_if_summed () =
  (* two updates to i per iteration: net step is not a single top-level
     assign, so the conversion refuses (C's flexibility at work) *)
  rejects "double update"
    {|void f(float *a, int n) {
        int i;
        i = 0;
        while (i < n) {
          a[i] = 1.0;
          i++;
          i++;
        }
      }|}
    "f"

let reject_address_taken_induction () =
  rejects "address-taken induction variable"
    {|void g(int *p);
      void f(float *a, int n) {
        int i;
        i = 0;
        while (i < n) {
          a[i] = 1.0;
          g(&i);
          i++;
        }
      }|}
    "f"

let semantics_suite () =
  (* conversions preserve results across every config *)
  List.iter
    (fun (name, src) -> assert_all_configs_agree name src)
    [
      ( "count up",
        {|float a[40];
          int main() {
            int i, s100;
            for (i = 0; i < 40; i++) a[i] = i * 2;
            s100 = 0;
            for (i = 0; i < 40; i++) s100 += (int)a[i];
            printf("%d\n", s100);
            return 0;
          }|} );
      ( "count down with while",
        {|float a[40];
          int main() {
            int n, s;
            n = 40;
            while (n) { a[n - 1] = n; n--; }
            s = 0;
            for (n = 0; n < 40; n++) s += (int)a[n];
            printf("%d\n", s);
            return 0;
          }|} );
      ( "early termination values",
        {|int main() {
            int i, n;
            n = 10;
            for (i = 0; i < n; i += 3);
            printf("%d\n", i);   /* 12: first value >= 10 by 3s */
            return 0;
          }|} );
      ( "zero trip",
        {|int main() {
            int i, s;
            s = 7;
            for (i = 5; i < 5; i++) s = 0;
            printf("%d %d\n", s, i);
            return 0;
          }|} );
    ]

let conversion_stats () =
  let prog =
    compile
      {|void f(float *a, int n) {
          int i;
          for (i = 0; i < n; i++) a[i] = 1.0;   /* converts */
          i = 0;
          while (i < n) {                        /* converts */
            a[i] = 2.0;
            i++;
          }
          for (i = 0; i < n; i++) {              /* rejected: break */
            if (a[i] > 1.5) break;
          }
        }|}
  in
  let stats = Vpc.Transform.While_to_do.new_stats () in
  List.iter
    (fun f -> ignore (Vpc.Transform.While_to_do.run ~stats prog f))
    prog.Vpc.Il.Prog.funcs;
  Alcotest.(check int) "converted" 2 stats.converted;
  Alcotest.(check bool) "rejected for branching out" true
    (stats.rejected_branch_out >= 1)

let tests =
  [
    Alcotest.test_case "count up <" `Quick count_up;
    Alcotest.test_case "count up <=" `Quick count_up_le;
    Alcotest.test_case "count down >" `Quick count_down;
    Alcotest.test_case "count down >=" `Quick count_down_ge;
    Alcotest.test_case "while (i) (§5.2)" `Quick nonzero_condition;
    Alcotest.test_case "!= bound" `Quick ne_condition;
    Alcotest.test_case "symbolic stride (§5.2)" `Quick symbolic_stride;
    Alcotest.test_case "temp-chain update" `Quick temp_chain_update;
    Alcotest.test_case "stride 2" `Quick stride_2;
    Alcotest.test_case "reject break" `Quick reject_break;
    Alcotest.test_case "reject return" `Quick reject_return_inside;
    Alcotest.test_case "reject goto-in" `Quick reject_goto_in;
    Alcotest.test_case "reject varying bound" `Quick reject_varying_bound;
    Alcotest.test_case "reject conditional update" `Quick reject_conditional_update;
    Alcotest.test_case "reject volatile cond" `Quick reject_volatile_condition;
    Alcotest.test_case "reject double update" `Quick reject_two_updates_is_ok_if_summed;
    Alcotest.test_case "reject &induction" `Quick reject_address_taken_induction;
    Alcotest.test_case "conversion semantics" `Quick semantics_suite;
    Alcotest.test_case "conversion stats" `Quick conversion_stats;
  ]
