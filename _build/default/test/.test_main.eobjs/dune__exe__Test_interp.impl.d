test/test_interp.ml: Alcotest Helpers List Printf QCheck QCheck_alcotest Vpc
