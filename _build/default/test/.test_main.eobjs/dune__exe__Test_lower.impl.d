test/test_lower.ml: Alcotest Helpers List Vpc
