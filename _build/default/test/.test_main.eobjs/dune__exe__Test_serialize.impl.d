test/test_serialize.ml: Alcotest Expr Float Gen_c Helpers Int64 List Printf QCheck QCheck_alcotest Ty Vpc
