test/test_codegen.ml: Alcotest Array Codegen Fmt Hashtbl Helpers Isa Machine Printf String Vpc
