test/helpers.ml: Alcotest Buffer List Printf String Vpc
