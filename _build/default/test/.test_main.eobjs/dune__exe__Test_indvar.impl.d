test/test_indvar.ml: Alcotest Buffer Helpers List Printf Vpc
