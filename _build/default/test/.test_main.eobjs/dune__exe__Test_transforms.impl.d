test/test_transforms.ml: Alcotest Helpers Vpc
