test/test_pipeline.ml: Alcotest Gen_c Helpers List Printf Vpc
