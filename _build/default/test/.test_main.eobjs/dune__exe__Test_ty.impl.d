test/test_ty.ml: Alcotest Hashtbl List Ty Vpc
