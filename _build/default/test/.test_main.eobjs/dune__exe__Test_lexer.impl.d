test/test_lexer.ml: Alcotest Lexer List Token Vpc
