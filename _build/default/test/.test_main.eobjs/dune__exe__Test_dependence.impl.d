test/test_dependence.ml: Alcotest Alias Expr Graph Hashtbl Helpers List Printf QCheck QCheck_alcotest Subscript Test Ty Var Vpc
