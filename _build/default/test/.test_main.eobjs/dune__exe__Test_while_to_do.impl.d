test/test_while_to_do.ml: Alcotest Helpers List Printf Vpc
