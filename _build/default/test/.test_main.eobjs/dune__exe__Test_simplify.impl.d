test/test_simplify.ml: Alcotest Expr QCheck QCheck_alcotest Ty Vpc
