test/test_inline.ml: Alcotest Filename Helpers List Printf String Sys Vpc
