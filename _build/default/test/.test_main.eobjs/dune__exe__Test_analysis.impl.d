test/test_analysis.ml: Alcotest Analysis Helpers Il List Option Vpc
