test/test_support.ml: Alcotest Bitset Gensym List Loc QCheck QCheck_alcotest Sexp Vpc
