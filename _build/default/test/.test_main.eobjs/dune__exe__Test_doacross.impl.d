test/test_doacross.ml: Alcotest Helpers Printf String Vpc
