test/test_vectorize.ml: Alcotest Helpers List String Vpc
