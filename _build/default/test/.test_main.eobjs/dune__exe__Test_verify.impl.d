test/test_verify.ml: Alcotest Filename Fun Gen_c Helpers List Printf String Sys Unix Vpc
