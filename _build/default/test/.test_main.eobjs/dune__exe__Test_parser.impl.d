test/test_parser.ml: Alcotest Helpers List Vpc
