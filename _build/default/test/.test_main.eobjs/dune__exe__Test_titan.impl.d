test/test_titan.ml: Alcotest Helpers List Machine Printf Vpc
