(* Simplifier tests: folding, algebraic identities, type preservation,
   and a property that simplification never changes the value of a
   constant expression. *)

open Vpc.Il
module S = Vpc.Analysis.Simplify

let i = Expr.int_const
let f v = Expr.float_const ~ty:Ty.Float v
let vx = Expr.var_id 1 Ty.Int
let add a b = Expr.binop Expr.Add a b Ty.Int
let sub a b = Expr.binop Expr.Sub a b Ty.Int
let mul a b = Expr.binop Expr.Mul a b Ty.Int

let folding () =
  let check name e expected =
    match (S.expr e).Expr.desc with
    | Expr.Const_int n -> Alcotest.(check int) name expected n
    | _ -> Alcotest.failf "%s: did not fold to a constant" name
  in
  check "2+3" (add (i 2) (i 3)) 5;
  check "7*6" (mul (i 7) (i 6)) 42;
  check "10-4-3 nested" (sub (sub (i 10) (i 4)) (i 3)) 3;
  check "x-x" (sub vx vx) 0;
  check "(x+8)-(x+4)" (sub (add vx (i 8)) (add vx (i 4))) 4;
  check "(x+8)-x" (sub (add vx (i 8)) vx) 8;
  check "x-(x+3)" (sub vx (add vx (i 3))) (-3);
  (* (x+1)+2 reassociates to x+3 *)
  match (S.expr (add (add vx (i 1)) (i 2))).Expr.desc with
  | Expr.Binop (Expr.Add, x, { desc = Expr.Const_int 3; _ })
    when Expr.equal x vx ->
      ()
  | _ -> Alcotest.fail "(x+1)+2 did not reassociate to x+3"

let identities () =
  let same name e expect_same =
    Alcotest.(check bool) name true (Expr.equal (S.expr e) expect_same)
  in
  same "x+0" (add vx (i 0)) vx;
  same "x*1" (mul vx (i 1)) vx;
  same "0+x" (add (i 0) vx) vx;
  let zero = S.expr (mul vx (i 0)) in
  Alcotest.(check bool) "x*0 folds" true (Expr.is_zero zero)

let float_safety () =
  (* x * 0.0 must NOT fold for floats (NaN/inf) *)
  let fx = Expr.var_id 2 Ty.Float in
  let e = Expr.binop Expr.Mul fx (f 0.0) Ty.Float in
  Alcotest.(check bool) "float x*0 not folded" false (Expr.is_zero (S.expr e));
  (* but x * 1.0 is safe *)
  let e1 = S.expr (Expr.binop Expr.Mul fx (f 1.0) Ty.Float) in
  Alcotest.(check bool) "float x*1 folds to x" true (Expr.equal e1 fx);
  (* x - x unsafe for floats *)
  let e2 = S.expr (Expr.binop Expr.Sub fx fx Ty.Float) in
  Alcotest.(check bool) "float x-x not folded" false (Expr.is_zero e2)

let type_preserved () =
  (* ptr + 0 keeps its pointer type (the regression behind multi-dim
     array loads) *)
  let p = Expr.var_id 3 (Ty.Ptr Ty.Float) in
  let e = S.expr (Expr.binop Expr.Add p (i 0) (Ty.Ptr Ty.Float)) in
  Alcotest.(check bool) "ptr type survives" true
    (Ty.equal e.Expr.ty (Ty.Ptr Ty.Float))

let division_by_zero_not_folded () =
  let e = S.expr (Expr.binop Expr.Div (i 5) (i 0) Ty.Int) in
  (match e.Expr.desc with
  | Expr.Binop (Expr.Div, _, _) -> ()
  | _ -> Alcotest.fail "5/0 must not fold");
  let e2 = S.expr (Expr.binop Expr.Rem (i 5) (i 0) Ty.Int) in
  match e2.Expr.desc with
  | Expr.Binop (Expr.Rem, _, _) -> ()
  | _ -> Alcotest.fail "5%0 must not fold"

(* random constant int expressions: simplify = interpreter's folding *)
let const_fold_prop =
  let module G = QCheck.Gen in
  let rec gen depth st : Expr.t =
    if depth = 0 || G.int_bound 2 st = 0 then i (G.int_range (-50) 50 st)
    else
      let a = gen (depth - 1) st in
      let b = gen (depth - 1) st in
      match G.int_bound 5 st with
      | 0 -> add a b
      | 1 -> sub a b
      | 2 -> mul a b
      | 3 -> Expr.binop Expr.Band a b Ty.Int
      | 4 -> Expr.binop Expr.Bxor a b Ty.Int
      | _ -> Expr.unop Expr.Neg a Ty.Int
  in
  QCheck.Test.make ~count:300 ~name:"constant folding is complete and right"
    (QCheck.make (gen 5))
    (fun e ->
      let folded = S.expr e in
      (* fully constant input must fold fully, and to the value wrap32
         arithmetic gives *)
      let rec eval (e : Expr.t) =
        match e.Expr.desc with
        | Expr.Const_int n -> n
        | Expr.Binop (op, a, b) -> (
            match S.fold_int_binop op (eval a) (eval b) with
            | Some v -> v
            | None -> 0)
        | Expr.Unop (Expr.Neg, a) -> S.wrap32 (-eval a)
        | _ -> 0
      in
      match folded.Expr.desc with
      | Expr.Const_int n -> n = eval e
      | _ -> false)

let tests =
  [
    Alcotest.test_case "folding" `Quick folding;
    Alcotest.test_case "identities" `Quick identities;
    Alcotest.test_case "float safety" `Quick float_safety;
    Alcotest.test_case "type preservation" `Quick type_preserved;
    Alcotest.test_case "div by zero kept" `Quick division_by_zero_not_folded;
    QCheck_alcotest.to_alcotest const_fold_prop;
  ]
