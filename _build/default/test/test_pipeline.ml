(* End-to-end pipeline tests: the paper's worked examples through the full
   compiler, a suite of realistic programs at every optimization level
   against every simulator configuration, and randomized differential
   testing (the generator in Helpers.Gen_c). *)

open Helpers

(* §9: the complete daxpy walkthrough — inline, fold the guards,
   vectorize, parallelize. *)
let daxpy_section9 () =
  let src =
    {|void daxpy(float *x, float *y, float *z, float alpha, int n)
      {
        if (n <= 0) return;
        if (alpha == 0) return;
        for (; n; n--)
          *x++ = *y++ + alpha * *z++;
      }
      float a[100], b[100], c[100];
      int main()
      {
        int i;
        for (i = 0; i < 100; i++) { b[i] = 3 * i; c[i] = i + 1; }
        daxpy(a, b, c, 1.0, 100);
        printf("%g %g %g\n", a[0], a[1], a[99]);
        return 0;
      }|}
  in
  let prog, stats = compile_stats ~options:Vpc.o3 src in
  let il = Vpc.Il.Pp.func_to_string prog (Vpc.Il.Prog.func_exn prog "main") in
  (* the call is gone, the guards are folded, the loop is parallel vector *)
  check_not_contains "no call" ~needle:"daxpy(" il;
  check_not_contains "guards folded" ~needle:"if (in_" il;
  check_not_contains "guards folded 2" ~needle:"goto" il;
  check_contains "do parallel" ~needle:"do parallel" il;
  check_contains "vector over a" ~needle:"(&a" il;
  (* alpha = 1.0 eliminated the multiply *)
  check_not_contains "alpha multiply gone" ~needle:"1.0 *" il;
  Alcotest.(check bool) "daxpy inlined" true (stats.inline.calls_inlined >= 1);
  Alcotest.(check bool) "loop vectorized" true
    (stats.vectorize.loops_vectorized >= 1);
  Alcotest.(check string) "§9 semantics" "1 5 397\n" (interp_output prog)

let program_suite () =
  List.iter
    (fun (name, src) -> assert_all_configs_agree name src)
    [
      ( "matrix multiply 8x8",
        {|float a[8][8], b[8][8], c[8][8];
          int main() {
            int i, j, k;
            float s;
            for (i = 0; i < 8; i++)
              for (j = 0; j < 8; j++) {
                a[i][j] = i + j;
                b[i][j] = i - j;
              }
            for (i = 0; i < 8; i++)
              for (j = 0; j < 8; j++) {
                s = 0.0;
                for (k = 0; k < 8; k++) s += a[i][k] * b[k][j];
                c[i][j] = s;
              }
            printf("%g %g %g\n", c[0][0], c[3][4], c[7][7]);
            return 0;
          }|} );
      ( "string reverse",
        {|char buf[32];
          int slen(char *s) { int n; n = 0; while (*s++) n++; return n; }
          int main() {
            int i, n;
            char t;
            for (i = 0; i < 11; i++) buf[i] = "hello world"[i];
            buf[11] = 0;
            n = slen(buf);
            for (i = 0; i < n / 2; i++) {
              t = buf[i];
              buf[i] = buf[n - 1 - i];
              buf[n - 1 - i] = t;
            }
            printf("%s %d\n", buf, n);
            return 0;
          }|} );
      ( "sieve of eratosthenes",
        {|int flags[100];
          int main() {
            int i, j, count;
            for (i = 0; i < 100; i++) flags[i] = 1;
            for (i = 2; i < 100; i++)
              if (flags[i])
                for (j = i + i; j < 100; j += i) flags[j] = 0;
            count = 0;
            for (i = 2; i < 100; i++) count += flags[i];
            printf("%d\n", count);
            return 0;
          }|} );
      ( "dot product",
        {|float x[300], y[300];
          int main() {
            int i;
            float dot;
            for (i = 0; i < 300; i++) { x[i] = i * 0.01f; y[i] = 3.0f - i * 0.01f; }
            dot = 0.0;
            for (i = 0; i < 300; i++) dot += x[i] * y[i];
            printf("%g\n", dot);
            return 0;
          }|} );
      ( "saxpy chain with functions",
        {|float u[64], v[64], w[64];
          void saxpy(float *d, float *s, float a, int n) {
            int i;
            for (i = 0; i < n; i++) d[i] += a * s[i];
          }
          int main() {
            int i;
            float sum;
            for (i = 0; i < 64; i++) { u[i] = i; v[i] = 64 - i; w[i] = 1.0f; }
            saxpy(u, v, 0.5f, 64);
            saxpy(v, w, 2.0f, 64);
            saxpy(u, v, 0.0f, 64);   /* no-op thanks to a = 0 */
            sum = 0.0;
            for (i = 0; i < 64; i++) sum += u[i] + v[i];
            printf("%g\n", sum);
            return 0;
          }|} );
      ( "histogram",
        {|int data[256], hist[16];
          int main() {
            int i, s;
            for (i = 0; i < 256; i++) data[i] = (i * 37) & 15;
            for (i = 0; i < 16; i++) hist[i] = 0;
            for (i = 0; i < 256; i++) hist[data[i]]++;
            s = 0;
            for (i = 0; i < 16; i++) s += hist[i] * (i + 1);
            printf("%d\n", s);
            return 0;
          }|} );
      ( "struct particles",
        {|struct particle { float pos[3]; float vel[3]; int alive; };
          struct particle ps[16];
          int main() {
            int i, k, living;
            for (i = 0; i < 16; i++) {
              ps[i].alive = (i & 3) != 0;
              for (k = 0; k < 3; k++) {
                ps[i].pos[k] = i * 1.0f;
                ps[i].vel[k] = k * 0.5f;
              }
            }
            for (i = 0; i < 16; i++)
              if (ps[i].alive)
                for (k = 0; k < 3; k++)
                  ps[i].pos[k] += ps[i].vel[k];
            living = 0;
            for (i = 0; i < 16; i++) living += ps[i].alive;
            printf("%d %g %g\n", living, ps[1].pos[2], ps[4].pos[0]);
            return 0;
          }|} );
      ( "fibonacci memo",
        {|int memo[40];
          int fib(int n) {
            if (n < 2) return n;
            if (memo[n]) return memo[n];
            memo[n] = fib(n - 1) + fib(n - 2);
            return memo[n];
          }
          int main() { printf("%d\n", fib(30)); return 0; }|} );
      ( "graphics transform 4x4",
        {|float m[4][4], vin[4], vout[4];
          int main() {
            int i, j;
            for (i = 0; i < 4; i++) {
              vin[i] = i + 1;
              for (j = 0; j < 4; j++) m[i][j] = (i == j) ? 2.0f : 1.0f;
            }
            for (i = 0; i < 4; i++) {
              vout[i] = 0.0f;
              for (j = 0; j < 4; j++) vout[i] += m[i][j] * vin[j];
            }
            printf("%g %g %g %g\n", vout[0], vout[1], vout[2], vout[3]);
            return 0;
          }|} );
    ]

(* Randomized differential testing: every optimization level and machine
   configuration must print the same checksums as the O0 interpreter. *)
let random_programs () =
  for seed = 1 to 40 do
    let src = Gen_c.program seed in
    try assert_all_configs_agree (Printf.sprintf "random #%d" seed) src
    with
    | Vpc.Support.Diag.Error_exn d ->
        Alcotest.failf "random #%d failed to compile: %s\n%s" seed
          (Vpc.Support.Diag.to_string d) src
    | Vpc.Il.Interp.Runtime_error m ->
        Alcotest.failf "random #%d interp error: %s\n%s" seed m src
    | Vpc.Titan.Machine.Runtime_error m ->
        Alcotest.failf "random #%d titan error: %s\n%s" seed m src
  done

let volatile_device_loop () =
  (* the §1 keyboard-status example survives O3 end to end *)
  let src =
    {|volatile int keyboard_status;
      int poll() {
        keyboard_status = 0;
        while (!keyboard_status);
        return 1;
      }
      int main() { return 0; }|}
  in
  let prog = compile ~options:Vpc.o3 src in
  let il = Vpc.Il.Pp.func_to_string prog (Vpc.Il.Prog.func_exn prog "poll") in
  check_contains "busy-wait loop survives" ~needle:"while" il;
  check_contains "keyboard_status read survives" ~needle:"keyboard_status" il

let tests =
  [
    Alcotest.test_case "§9 daxpy walkthrough" `Quick daxpy_section9;
    Alcotest.test_case "program suite" `Slow program_suite;
    Alcotest.test_case "random programs" `Slow random_programs;
    Alcotest.test_case "volatile device loop" `Quick volatile_device_loop;
  ]
