(* Inliner tests (paper §7/§8): call-site expansion, parameter binding,
   recursion guards, static promotion, catalogs, and the interaction with
   constant propagation that makes inlined specializations collapse. *)

open Helpers

let o3 = Vpc.o3

let basic_expansion () =
  let src =
    {|int add3(int x) { return x + 3; }
      int main() { printf("%d\n", add3(10)); return 0; }|}
  in
  let prog, stats = compile_stats ~options:o3 src in
  Alcotest.(check int) "one call inlined" 1 stats.inline.calls_inlined;
  Alcotest.(check string) "result" "13\n" (interp_output prog);
  let il = Vpc.Il.Pp.func_to_string prog (Vpc.Il.Prog.func_exn prog "main") in
  check_not_contains "no call left" ~needle:"add3(" il;
  check_contains "folded to 13" ~needle:"13" il

let daxpy_guard_folding () =
  (* §8: daxpy(x, y, 0.0, z): the whole body folds away *)
  let src =
    {|float gx;
      void daxpy(float *x, float y, float a, float z) {
        if (a == 0.0) return;
        *x = y + a * z;
      }
      int main() {
        gx = 5.0;
        daxpy(&gx, 1.0, 0.0, 2.0);
        printf("%g\n", gx);
        return 0;
      }|}
  in
  let prog = compile ~options:o3 src in
  let il = Vpc.Il.Pp.func_to_string prog (Vpc.Il.Prog.func_exn prog "main") in
  (* the store to *x is unreachable and must be gone *)
  check_not_contains "dead assignment eliminated (§8)" ~needle:"+ in_a" il;
  check_not_contains "no fp multiply left" ~needle:"*" (String.concat ""
    (List.filter (fun line -> Helpers.contains ~needle:"in_" line)
       (String.split_on_char '\n' il)));
  Alcotest.(check string) "value unchanged" "5\n" (interp_output prog)

let param_shapes () =
  (* in_x = ...; body uses the copies (the §9 listing's shape) *)
  let src =
    {|int scale(int v, int k) { return v * k; }
      int main() { return scale(6, 7); }|}
  in
  let prog = compile ~options:{ o3 with Vpc.scalar_opt = false } src in
  let il = Vpc.Il.Pp.func_to_string prog (Vpc.Il.Prog.func_exn prog "main") in
  check_contains "in_v binding" ~needle:"in_v = 6;" il;
  check_contains "in_k binding" ~needle:"in_k = 7;" il;
  check_contains "exit label" ~needle:".lb_" il

let nested_inlining () =
  let src =
    {|int inner(int x) { return x + 1; }
      int middle(int x) { return inner(x) * 2; }
      int outer(int x) { return middle(x) + inner(x); }
      int main() { printf("%d\n", outer(10)); return 0; }|}
  in
  let prog, stats = compile_stats ~options:o3 src in
  Alcotest.(check string) "nested result" "33\n" (interp_output prog);
  Alcotest.(check bool) "several inlines" true (stats.inline.calls_inlined >= 3);
  let il = Vpc.Il.Pp.func_to_string prog (Vpc.Il.Prog.func_exn prog "main") in
  check_not_contains "no calls left" ~needle:"outer(" il

let recursion_guard () =
  let src =
    {|int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
      int main() { printf("%d\n", fact(6)); return 0; }|}
  in
  let prog, stats = compile_stats ~options:o3 src in
  Alcotest.(check string) "recursion still right" "720\n" (interp_output prog);
  Alcotest.(check bool) "recursive calls skipped" true
    (stats.inline.calls_skipped_recursive > 0)

let mutual_recursion_guard () =
  let src =
    {|int is_odd(int n);
      int is_even(int n) { return n == 0 ? 1 : is_odd(n - 1); }
      int is_odd(int n) { return n == 0 ? 0 : is_even(n - 1); }
      int main() { printf("%d %d\n", is_even(10), is_odd(7)); return 0; }|}
  in
  let prog = compile ~options:o3 src in
  Alcotest.(check string) "mutual recursion" "1 1\n" (interp_output prog)

let static_variable_single_storage () =
  (* §7: statics must keep one storage location whether the function is
     called or inlined *)
  let src =
    {|int counter() {
        static int n = 0;
        n++;
        return n;
      }
      int main() {
        int a, b, c;
        a = counter();
        b = counter();
        c = counter();
        printf("%d %d %d\n", a, b, c);
        return 0;
      }|}
  in
  List.iter
    (fun (name, options) ->
      Alcotest.(check string) name "1 2 3\n"
        (interp_output (compile ~options src)))
    [ ("without inlining", Vpc.o1); ("with inlining", o3) ]

let library_calls_untouched () =
  let src = {|int main() { printf("%d\n", abs(-4)); return 0; }|} in
  let prog, stats = compile_stats ~options:o3 src in
  Alcotest.(check string) "builtin works" "4\n" (interp_output prog);
  Alcotest.(check bool) "builtin not inlinable" true
    (stats.inline.calls_skipped_unknown >= 1)

let only_filter () =
  let src =
    {|int f(int x) { return x + 1; }
      int g(int x) { return x + 2; }
      int main() { printf("%d\n", f(1) + g(1)); return 0; }|}
  in
  let options = { Vpc.o3 with Vpc.inline = `Only [ "f" ] } in
  let prog = compile ~options src in
  let il = Vpc.Il.Pp.func_to_string prog (Vpc.Il.Prog.func_exn prog "main") in
  check_not_contains "f inlined" ~needle:" f(" il;
  check_contains "g not inlined" ~needle:"g(1)" il;
  Alcotest.(check string) "result" "5\n" (interp_output prog)

let size_threshold () =
  (* a huge callee is refused *)
  let body = String.concat "" (List.init 300 (fun i -> Printf.sprintf "x += %d; " (i mod 7))) in
  let src =
    Printf.sprintf
      {|int big(int x) { %s return x; }
        int main() { printf("%%d\n", big(1)); return 0; }|}
      body
  in
  let prog, stats = compile_stats ~options:o3 src in
  Alcotest.(check bool) "skipped for size" true (stats.inline.calls_skipped_size > 0);
  ignore (interp_output prog)

let goto_label_renaming () =
  (* inline the same function twice: labels must not collide *)
  let src =
    {|int firstpos(int a, int b) {
        if (a > 0) goto done;
        a = b;
      done:
        return a;
      }
      int main() {
        printf("%d %d\n", firstpos(5, 9), firstpos(-1, 9));
        return 0;
      }|}
  in
  let prog = compile ~options:o3 src in
  Alcotest.(check string) "labels renamed" "5 9\n" (interp_output prog)

let enables_vectorization () =
  (* §1: calls inhibit vectorization; inlining removes the barrier *)
  let src =
    {|float a[100], b[100];
      float work(float x) { return x * 2.0f + 1.0f; }
      void loop_() {
        int i;
        for (i = 0; i < 100; i++) a[i] = work(b[i]);
      }|}
  in
  let il_no_inline = func_il ~options:Vpc.o2 src "loop_" in
  check_not_contains "call blocks vectorization" ~needle:"[0 : " il_no_inline;
  let il_inline = func_il ~options:o3 src "loop_" in
  check_contains "inlining unlocks vectorization" ~needle:"[0 : " il_inline

let catalog_roundtrip () =
  let src =
    {|float cube(float x) { return x * x * x; }
      int helper(int n) { return n * 2; }|}
  in
  let lib = compile ~options:Vpc.o0 src in
  let text = Vpc.Inline.Catalog.to_string lib in
  let back = Vpc.Inline.Catalog.of_string text in
  Alcotest.(check int) "two functions" 2 (List.length back.Vpc.Il.Prog.funcs);
  (* reserialization is stable *)
  Alcotest.(check string) "stable" text (Vpc.Inline.Catalog.to_string back)

let catalog_import_and_inline () =
  let lib_src = {|float cube(float x) { return x * x * x; }|} in
  let lib = compile ~options:Vpc.o0 lib_src in
  let file = Filename.temp_file "vpc_catalog" ".vcat" in
  Vpc.Inline.Catalog.save lib file;
  let main_src =
    {|float cube(float);
      int main() { printf("%g\n", cube(3.0f)); return 0; }|}
  in
  let options = { Vpc.o3 with Vpc.catalogs = [ file ] } in
  let prog, stats = compile_stats ~options main_src in
  Sys.remove file;
  Alcotest.(check string) "cross-file inline" "27\n" (interp_output prog);
  Alcotest.(check bool) "was inlined" true (stats.inline.calls_inlined >= 1)

let catalog_static_unified () =
  (* importing a catalog twice must not duplicate a library's globals *)
  let lib = compile ~options:Vpc.o0 "int lib_state = 5; int get() { return lib_state; }" in
  let target = compile ~options:Vpc.o0 "int main() { return 0; }" in
  Vpc.Inline.Catalog.import ~into:target lib;
  Vpc.Inline.Catalog.import ~into:target lib;
  let names =
    List.map
      (fun (g : Vpc.Il.Prog.global) -> g.gvar.Vpc.Il.Var.name)
      (Vpc.Il.Prog.globals_list target)
  in
  Alcotest.(check int) "lib_state appears once" 1
    (List.length (List.filter (( = ) "lib_state") names))

let tests =
  [
    Alcotest.test_case "basic expansion" `Quick basic_expansion;
    Alcotest.test_case "guard folding (§8)" `Quick daxpy_guard_folding;
    Alcotest.test_case "parameter shapes (§9)" `Quick param_shapes;
    Alcotest.test_case "nested inlining" `Quick nested_inlining;
    Alcotest.test_case "recursion guard" `Quick recursion_guard;
    Alcotest.test_case "mutual recursion" `Quick mutual_recursion_guard;
    Alcotest.test_case "static single storage (§7)" `Quick static_variable_single_storage;
    Alcotest.test_case "library calls" `Quick library_calls_untouched;
    Alcotest.test_case "--inline filter" `Quick only_filter;
    Alcotest.test_case "size threshold" `Quick size_threshold;
    Alcotest.test_case "label renaming" `Quick goto_label_renaming;
    Alcotest.test_case "enables vectorization (§1)" `Quick enables_vectorization;
    Alcotest.test_case "catalog roundtrip" `Quick catalog_roundtrip;
    Alcotest.test_case "catalog import+inline (§7)" `Quick catalog_import_and_inline;
    Alcotest.test_case "catalog globals unified" `Quick catalog_static_unified;
  ]
