(* Scalar replacement and strength reduction tests (paper §6). *)

open Helpers

let backsolve_src =
  {|float x[501], y[500], z[500];
    void backsolve(int n) {
      float *p, *q;
      int i;
      p = &x[1];
      q = &x[0];
      for (i = 0; i < n - 2; i++)
        p[i] = z[i] * (y[i] - q[i]);
    }
    int main() {
      int i;
      for (i = 0; i < 500; i++) { y[i] = i * 0.25f; z[i] = 0.5f; }
      x[0] = 2.0f;
      backsolve(500);
      printf("%g %g %g\n", x[1], x[10], x[498]);
      return 0;
    }|}

let backsolve_scalar_replaced () =
  (* the §6 listing: f_reg carries the recurrence, one load removed *)
  let prog, stats = compile_stats ~options:Vpc.o3 backsolve_src in
  Alcotest.(check bool) "scalar replacement fired" true
    (stats.scalar_replace.loops_transformed >= 1);
  let il = Vpc.Il.Pp.func_to_string prog (Vpc.Il.Prog.func_exn prog "main") in
  check_contains "f_reg register" ~needle:"f_reg" il

let backsolve_strength_reduced () =
  let prog, stats = compile_stats ~options:Vpc.o3 backsolve_src in
  Alcotest.(check bool) "strength reduction fired" true
    (stats.strength_reduction.loops_reduced >= 1);
  Alcotest.(check bool) "multiplies removed" true
    (stats.strength_reduction.multiplies_removed >= 3);
  let il = Vpc.Il.Pp.func_to_string prog (Vpc.Il.Prog.func_exn prog "main") in
  check_contains "pointer temps" ~needle:"sr_ptr" il;
  (* inside the reduced loop there is no multiplication by the index *)
  check_not_contains "no index multiply in body" ~needle:"4 * dummy" il

let backsolve_semantics () = assert_all_configs_agree "backsolve" backsolve_src

let scalar_replace_requires_distance_one () =
  (* distance 2 recurrence: scalar replacement must not fire *)
  let src =
    {|float x[502];
      void f(int n) {
        float *p, *q;
        int i;
        p = &x[2];
        q = &x[0];
        for (i = 0; i < n; i++)
          p[i] = q[i] + 1.0f;
      }|}
  in
  let prog, stats =
    compile_stats ~options:{ Vpc.o3 with Vpc.strength_reduction = false } src
  in
  ignore prog;
  Alcotest.(check int) "not transformed" 0 stats.scalar_replace.loops_transformed

let scalar_replace_semantics_distance2 () =
  assert_all_configs_agree "distance 2 recurrence"
    {|float x[502];
      int main() {
        float *p, *q;
        int i;
        x[0] = 1.0f; x[1] = 2.0f;
        p = &x[2];
        q = &x[0];
        for (i = 0; i < 500; i++) p[i] = q[i] + 1.0f;
        printf("%g %g %g\n", x[2], x[3], x[501]);
        return 0;
      }|}

let strength_reduction_shares_pointers () =
  (* two references with the same base and stride share one pointer (the
     CSE part of §6) *)
  let src =
    {|float a[100], b[100];
      void f(int n) {
        int i;
        for (i = 0; i < n - 1; i++)
          a[i] = b[i] * b[i] + 1.0f;   /* b[i] appears twice */
      }|}
  in
  let prog, stats = compile_stats ~options:Vpc.o1 src in
  ignore prog;
  Alcotest.(check bool) "pointer shared" true
    (stats.strength_reduction.pointers_shared >= 1)

let invariant_hoisting () =
  let src =
    {|float a[100];
      void f(int n, float s, float t) {
        int i;
        for (i = 0; i < n; i++)
          a[i] = a[i] * (s * t + 1.0f);   /* s*t+1 is invariant *)
      }|}
  in
  (* note: * inside the comment above closes it; use a clean source *)
  ignore src;
  let src =
    {|float a[100];
      void f(int n, float s, float t) {
        int i;
        for (i = 0; i < n; i++)
          a[i] = a[i] * (s * t + 1.0f);
      }|}
  in
  let prog, stats = compile_stats ~options:Vpc.o1 src in
  ignore prog;
  Alcotest.(check bool) "invariant hoisted" true
    (stats.strength_reduction.invariants_hoisted >= 1)

let strength_reduction_not_on_vector_loops () =
  (* vectorized loops must not be de-optimized back to pointers *)
  let src =
    {|float a[100], b[100];
      void f() {
        int i;
        for (i = 0; i < 100; i++) a[i] = b[i] + 1.0f;
      }|}
  in
  let il = func_il ~options:Vpc.o2 src "f" in
  check_contains "still vector" ~needle:"[0 : " il;
  check_not_contains "no sr pointers in vector loop" ~needle:"sr_ptr" il

let reduction_loop_strength_reduced () =
  (* the classic sum loop keeps its reduction but the subscript multiply
     goes away *)
  let src =
    {|float a[200];
      float sum(int n) {
        float s;
        int i;
        s = 0.0;
        for (i = 0; i < n; i++) s += a[i];
        return s;
      }|}
  in
  let il = func_il ~options:Vpc.o2 src "sum" in
  check_contains "reduced to pointer walk" ~needle:"sr_ptr" il;
  assert_all_configs_agree "sum semantics"
    {|float a[200];
      int main() {
        int i;
        float s;
        for (i = 0; i < 200; i++) a[i] = i * 0.5f;
        s = 0;
        for (i = 0; i < 200; i++) s += a[i];
        printf("%g\n", s);
        return 0;
      }|}

let tests =
  [
    Alcotest.test_case "backsolve scalar replaced (§6)" `Quick backsolve_scalar_replaced;
    Alcotest.test_case "backsolve strength reduced (§6)" `Quick backsolve_strength_reduced;
    Alcotest.test_case "backsolve semantics" `Quick backsolve_semantics;
    Alcotest.test_case "distance-1 requirement" `Quick scalar_replace_requires_distance_one;
    Alcotest.test_case "distance-2 semantics" `Quick scalar_replace_semantics_distance2;
    Alcotest.test_case "pointer sharing (CSE)" `Quick strength_reduction_shares_pointers;
    Alcotest.test_case "invariant hoisting" `Quick invariant_hoisting;
    Alcotest.test_case "vector loops untouched" `Quick strength_reduction_not_on_vector_loops;
    Alcotest.test_case "reduction loop" `Quick reduction_loop_strength_reduced;
  ]
