(* Doacross (§10) tests: pointer-chasing loops split into a serialized
   advance and a parallel body, gated on the independence pragma. *)

open Helpers

let list_walk_src =
  {|struct node { float val; int next; };
    struct node pool[128];
    float out[128];
    int main()
    {
      int p, k;
      float s;
      for (k = 0; k < 128; k++) {
        pool[k].val = k * 0.5f;
        pool[k].next = (k < 127) ? k + 1 : -1;
      }
      k = 0;
      p = 0;
      #pragma vpc independent
      while (p != -1) {
        out[k] = pool[p].val * 2.0f + 1.0f;
        p = pool[p].next;
        k++;
      }
      s = 0;
      for (k = 0; k < 128; k++) s += out[k];
      printf("%g %d\n", s, k);
      return 0;
    }|}

let transforms_with_pragma () =
  let prog, stats = compile_stats ~options:Vpc.o2 list_walk_src in
  Alcotest.(check int) "one loop transformed" 1
    stats.doacross.loops_transformed;
  let il = Vpc.Il.Pp.func_to_string prog (Vpc.Il.Prog.func_exn prog "main") in
  check_contains "marked doacross" ~needle:"doacross" il;
  (* the copies capture the pre-advance values *)
  check_contains "pointer copy" ~needle:"p_cur" il

let not_without_pragma () =
  (* the same program with the pragma line stripped *)
  let src =
    String.concat ""
      (String.split_on_char '#' list_walk_src |> function
       | before :: after :: rest ->
           let after =
             match String.index_opt after '\n' with
             | Some i -> String.sub after i (String.length after - i)
             | None -> after
           in
           before :: after :: rest
       | l -> l)
  in
  let prog, stats = compile_stats ~options:Vpc.o2 src in
  ignore prog;
  Alcotest.(check int) "no pragma, no transform" 0
    stats.doacross.loops_transformed

let semantics_preserved () = assert_all_configs_agree "list walk" list_walk_src

let semantics_with_branches () =
  assert_all_configs_agree "list walk with conditional body"
    {|struct node { float val; int next; };
      struct node pool[64];
      float pos[64], neg[64];
      int main()
      {
        int p, k;
        float sp, sn;
        for (k = 0; k < 64; k++) {
          pool[k].val = (k & 1) ? (0.0f - k) : (float)k;
          pool[k].next = (k < 63) ? k + 1 : -1;
        }
        k = 0;
        p = 0;
        #pragma vpc independent
        while (p != -1) {
          if (pool[p].val < 0.0f) neg[k] = pool[p].val;
          else pos[k] = pool[p].val;
          p = pool[p].next;
          k++;
        }
        sp = 0; sn = 0;
        for (k = 0; k < 64; k++) { sp += pos[k]; sn += neg[k]; }
        printf("%g %g\n", sp, sn);
        return 0;
      }|}

let processors_reduce_cycles () =
  let prog = compile ~options:Vpc.o2 list_walk_src in
  let cyc procs =
    (Vpc.run_titan
       ~config:{ Vpc.Titan.Machine.default_config with procs }
       prog)
      .metrics
      .cycles
  in
  let c1 = cyc 1 and c4 = cyc 4 in
  Alcotest.(check bool)
    (Printf.sprintf "4 procs reduce cycles (%d -> %d)" c1 c4)
    true (c4 < c1)

let rejects_body_feeding_advance () =
  (* the advance reads a value the parallel body computes: must reject *)
  let src =
    {|int pool[64];
      float out[64];
      int main()
      {
        int p, k, t;
        p = 0; k = 0;
        #pragma vpc independent
        while (p != -1 && k < 64) {
          t = pool[p] & 63;
          out[k] = (float)t;
          p = (t > 32) ? -1 : k;   /* p depends on t from the body */
          k++;
        }
        printf("%d\n", k);
        return 0;
      }|}
  in
  (* whether or not the shape is recognized, results must be preserved *)
  assert_all_configs_agree "body feeds advance" src

let tests =
  [
    Alcotest.test_case "transforms with pragma" `Quick transforms_with_pragma;
    Alcotest.test_case "needs the pragma" `Quick not_without_pragma;
    Alcotest.test_case "semantics" `Quick semantics_preserved;
    Alcotest.test_case "conditional bodies" `Quick semantics_with_branches;
    Alcotest.test_case "processors help" `Quick processors_reduce_cycles;
    Alcotest.test_case "rejects dependent advance" `Quick rejects_body_feeding_advance;
  ]
