(* Shared test machinery: compilation helpers, differential execution
   between the IL interpreter and the Titan simulator across optimization
   levels, and a random C program generator for property tests. *)

let compile ?(options = Vpc.o0) src : Vpc.Il.Prog.t =
  fst (Vpc.compile ~options src)

let compile_stats ?(options = Vpc.o0) src = Vpc.compile ~options src

let interp_output ?entry prog =
  (Vpc.run_interp ?entry prog).Vpc.Il.Interp.stdout_text

let titan_output ?config prog =
  (Vpc.run_titan ?config prog).Vpc.Titan.Machine.stdout_text

(* Compile [src] at every level and run on the interpreter and the Titan
   simulator in several configurations; all outputs must equal the O0
   interpreter output. *)
let all_levels = [ ("O0", Vpc.o0); ("O1", Vpc.o1); ("O2", Vpc.o2); ("O3", Vpc.o3) ]

let assert_all_configs_agree ?(levels = all_levels) name src =
  let reference = interp_output (compile ~options:Vpc.o0 src) in
  List.iter
    (fun (lname, options) ->
      let prog = compile ~options src in
      let i_out = interp_output prog in
      Alcotest.(check string)
        (Printf.sprintf "%s: interp at %s" name lname)
        reference i_out;
      List.iter
        (fun (cname, config) ->
          let t_out = titan_output ~config prog in
          Alcotest.(check string)
            (Printf.sprintf "%s: titan %s at %s" name cname lname)
            reference t_out)
        [
          ("seq", { Vpc.Titan.Machine.default_config with sched = Vpc.Titan.Machine.Sequential });
          ("cons", { Vpc.Titan.Machine.default_config with sched = Vpc.Titan.Machine.Overlap_conservative });
          ("full1", Vpc.Titan.Machine.default_config);
          ("full4", { Vpc.Titan.Machine.default_config with procs = 4 });
        ])
    levels

(* IL text of one function after compiling at [options]. *)
let func_il ?(options = Vpc.o0) src fname =
  let prog = compile ~options src in
  Vpc.Il.Pp.func_to_string prog (Vpc.Il.Prog.func_exn prog fname)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let check_contains name ~needle haystack =
  if not (contains ~needle haystack) then
    Alcotest.failf "%s: expected to find %S in:\n%s" name needle haystack

let check_not_contains name ~needle haystack =
  if contains ~needle haystack then
    Alcotest.failf "%s: did not expect %S in:\n%s" name needle haystack

(* ----------------------------------------------------------------- *)
(* Random C program generation (for differential property tests)     *)
(* ----------------------------------------------------------------- *)

(* Programs over two global float arrays and two int arrays, with nested
   counted loops, conditionals, scalar temporaries, side-effecting
   operators, and a deterministic checksum print at the end.  Division is
   avoided; int arithmetic wraps identically everywhere. *)
module Gen_c = struct
  type rng = { mutable seed : int }

  let next r =
    (* xorshift *)
    let x = r.seed in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    let x = x land 0x3FFFFFFFFFFF in
    r.seed <- (if x = 0 then 88172645463325252 else x);
    x

  let range r n = if n <= 0 then 0 else next r mod n

  let pick r l = List.nth l (range r (List.length l))

  let arr_len = 64

  (* an int expression in terms of loop var [i] and int scalars *)
  let rec int_expr r depth vars =
    if depth <= 0 || range r 3 = 0 then
      pick r
        ([ string_of_int (range r 20); "1"; "2" ]
        @ vars
        @ List.concat_map (fun v -> [ v ]) vars)
    else
      let a = int_expr r (depth - 1) vars in
      let b = int_expr r (depth - 1) vars in
      match range r 6 with
      | 0 -> Printf.sprintf "(%s + %s)" a b
      | 1 -> Printf.sprintf "(%s - %s)" a b
      | 2 -> Printf.sprintf "(%s * %s)" a b
      | 3 -> Printf.sprintf "(%s & 15)" a
      | 4 -> Printf.sprintf "(%s < %s)" a b
      | _ -> Printf.sprintf "(%s ^ %s)" a b

  let idx_expr r vars =
    (* an in-bounds index expression *)
    match range r 4 with
    | 0 -> pick r vars
    | 1 -> Printf.sprintf "(%s + %d) & 63" (pick r vars) (range r 8)
    | 2 -> Printf.sprintf "63 - %s" (pick r vars)
    | _ -> Printf.sprintf "(%s * 3) & 63" (pick r vars)

  let rec float_expr r depth ivars =
    if depth <= 0 || range r 3 = 0 then
      match range r 4 with
      | 0 -> Printf.sprintf "fa[%s]" (idx_expr r ivars)
      | 1 -> Printf.sprintf "fb[%s]" (idx_expr r ivars)
      | 2 -> Printf.sprintf "%d.5f" (range r 10)
      | _ -> Printf.sprintf "(float)%s" (pick r ivars)
    else
      let a = float_expr r (depth - 1) ivars in
      let b = float_expr r (depth - 1) ivars in
      match range r 3 with
      | 0 -> Printf.sprintf "(%s + %s)" a b
      | 1 -> Printf.sprintf "(%s - %s)" a b
      | _ -> Printf.sprintf "(%s * %s)" a b

  let stmt r ivars buf indent =
    let pad = String.make indent ' ' in
    match range r 8 with
    | 0 | 1 ->
        Buffer.add_string buf
          (Printf.sprintf "%sfa[%s] = %s;\n" pad (idx_expr r ivars)
             (float_expr r 2 ivars))
    | 2 ->
        Buffer.add_string buf
          (Printf.sprintf "%sfb[%s] = %s;\n" pad (idx_expr r ivars)
             (float_expr r 2 ivars))
    | 3 ->
        Buffer.add_string buf
          (Printf.sprintf "%sia[%s] = %s;\n" pad (idx_expr r ivars)
             (int_expr r 2 ivars))
    | 4 ->
        Buffer.add_string buf
          (Printf.sprintf "%st%d = %s;\n" pad (range r 3) (int_expr r 2 ivars))
    | 5 ->
        Buffer.add_string buf
          (Printf.sprintf "%sfa[%s] += %s;\n" pad (idx_expr r ivars)
             (float_expr r 1 ivars))
    | 6 ->
        Buffer.add_string buf
          (Printf.sprintf "%sif (%s) { fb[%s] = %s; }\n" pad
             (int_expr r 1 ivars) (idx_expr r ivars) (float_expr r 1 ivars))
    | _ ->
        Buffer.add_string buf
          (Printf.sprintf "%sia[%s] ^= %s;\n" pad (idx_expr r ivars)
             (int_expr r 1 ivars))

  let loop r ivars buf indent ~depth =
    let pad = String.make indent ' ' in
    let iv = Printf.sprintf "i%d" depth in
    let n = 8 + range r 56 in
    let style = range r 3 in
    (match style with
    | 0 ->
        Buffer.add_string buf
          (Printf.sprintf "%sfor (%s = 0; %s < %d; %s++) {\n" pad iv iv n iv)
    | 1 ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s = %d;\n%swhile (%s) {\n" pad iv n pad iv)
    | _ ->
        Buffer.add_string buf
          (Printf.sprintf "%sfor (%s = %d; %s > 0; %s -= 1) {\n" pad iv n iv iv));
    let ivars = iv :: ivars in
    let body_stmts = 1 + range r 4 in
    for _ = 1 to body_stmts do
      stmt r ivars buf (indent + 2)
    done;
    if style = 1 then
      Buffer.add_string buf (Printf.sprintf "%s  %s--;\n" pad iv);
    Buffer.add_string buf (Printf.sprintf "%s}\n" pad)

  let program seed =
    let r = { seed = (seed * 2654435761) lor 1 } in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf
         "float fa[%d], fb[%d];\nint ia[%d];\nint t0, t1, t2;\n\nint main()\n{\n  int i0, i1, i2, k;\n"
         arr_len arr_len arr_len);
    Buffer.add_string buf
      "  for (k = 0; k < 64; k++) { fa[k] = k * 0.25f; fb[k] = 64 - k; ia[k] = k * 7; }\n";
    let nloops = 1 + range r 3 in
    for li = 0 to nloops - 1 do
      let nested = range r 2 = 0 && li < 2 in
      if nested then begin
        let pad = "  " in
        let iv = "i0" in
        let n = 4 + range r 12 in
        Buffer.add_string buf
          (Printf.sprintf "%sfor (%s = 0; %s < %d; %s++) {\n" pad iv iv n iv);
        loop r [ iv ] buf 4 ~depth:1;
        Buffer.add_string buf (Printf.sprintf "%s}\n" pad)
      end
      else loop r [] buf 2 ~depth:0
    done;
    (* deterministic checksums *)
    Buffer.add_string buf
      "  {\n\
      \    float fs; int is;\n\
      \    fs = 0; is = 0;\n\
      \    for (k = 0; k < 64; k++) { fs += fa[k] + fb[k]; is += ia[k]; }\n\
      \    printf(\"%g %d %d %d %d\\n\", fs, is, t0, t1, t2);\n\
      \  }\n\
      \  return 0;\n\
       }\n";
    Buffer.contents buf
end
