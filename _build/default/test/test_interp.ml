(* IL interpreter tests: C semantics (arithmetic, conversions, recursion,
   memory) plus a qcheck property comparing pure integer expression
   evaluation against an OCaml reference. *)

open Helpers

let arithmetic () =
  let src =
    {|int main() {
        printf("%d %d %d %d %d\n", 7 / 2, -7 / 2, 7 % 3, -7 % 3, 1 << 4);
        printf("%d %d %d\n", 255 & 51, 0x0F | 0xF0, 5 ^ 3);
        printf("%g %g\n", 1.0 / 4.0, 3.0 * 0.5);
        return 0;
      }|}
  in
  Alcotest.(check string) "arithmetic" "3 -3 1 -1 16\n51 255 6\n0.25 1.5\n"
    (interp_output (compile src))

let int_wrap () =
  let src =
    {|int main() {
        int x;
        x = 2147483647;
        x = x + 1;
        printf("%d\n", x);
        return 0;
      }|}
  in
  Alcotest.(check string) "32-bit wrap" "-2147483648\n" (interp_output (compile src))

let float_truncation () =
  let src =
    {|int main() {
        float f;
        int i;
        f = 0.1f;
        i = 3.99;
        /* float stores round to 32 bits */
        printf("%d %d\n", i, f < 0.1000001 && f > 0.0999999);
        return 0;
      }|}
  in
  Alcotest.(check string) "conversions" "3 1\n" (interp_output (compile src))

let char_semantics () =
  let src =
    {|char buf[4];
      int main() {
        char c;
        c = 200;          /* wraps to -56 as signed char */
        buf[0] = 'A';
        buf[1] = buf[0] + 1;
        printf("%d %c%c\n", c, buf[0], buf[1]);
        return 0;
      }|}
  in
  Alcotest.(check string) "char" "-56 AB\n" (interp_output (compile src))

let recursion () =
  let src =
    {|int fib(int n) {
        if (n < 2) return n;
        return fib(n - 1) + fib(n - 2);
      }
      int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
      int main() {
        printf("%d %d\n", fib(15), fact(7));
        return 0;
      }|}
  in
  Alcotest.(check string) "recursion" "610 5040\n" (interp_output (compile src))

let address_of_scalar () =
  let src =
    {|void bump(int *p) { *p += 5; }
      int main() {
        int x;
        x = 10;
        bump(&x);
        bump(&x);
        printf("%d\n", x);
        return 0;
      }|}
  in
  Alcotest.(check string) "&scalar" "20\n" (interp_output (compile src))

let global_state_across_calls () =
  let src =
    {|int counter;
      void tick() { counter++; }
      int main() {
        int i;
        for (i = 0; i < 7; i++) tick();
        printf("%d\n", counter);
        return 0;
      }|}
  in
  Alcotest.(check string) "globals" "7\n" (interp_output (compile src))

let static_locals () =
  let src =
    {|int next() {
        static int n = 100;
        n++;
        return n;
      }
      int main() {
        next(); next();
        printf("%d\n", next());
        return 0;
      }|}
  in
  Alcotest.(check string) "static local" "103\n" (interp_output (compile src))

let math_builtins () =
  let src =
    {|int main() {
        double x;
        x = sqrt(16.0);
        printf("%g %g %d\n", x, fabs(-2.5), abs(-7));
        return 0;
      }|}
  in
  Alcotest.(check string) "builtins" "4 2.5 7\n" (interp_output (compile src))

let infinite_loop_times_out () =
  let src = "int main() { for (;;); return 0; }" in
  let prog = compile src in
  match Vpc.Il.Interp.run ~max_steps:10_000 prog with
  | exception Vpc.Il.Interp.Timeout -> ()
  | _ -> Alcotest.fail "expected Timeout"

let runtime_errors () =
  List.iter
    (fun (name, src) ->
      let prog = compile src in
      match Vpc.Il.Interp.run prog with
      | exception Vpc.Il.Interp.Runtime_error _ -> ()
      | _ -> Alcotest.failf "%s: expected a runtime error" name)
    [
      ("div by zero", "int main() { int z; z = 0; return 1 / z; }");
      ("oob", "int a[2]; int main() { return a[1 << 24]; }");
      ("null deref", "int main() { int *p; p = 0; return *p; }");
    ]

(* Random pure integer expressions evaluated against an OCaml model. *)
let expr_prop =
  let module G = QCheck.Gen in
  (* generate a tree as both C text and an OCaml closure over (a, b) *)
  let rec gen depth st : string * (int -> int -> int) =
    let wrap32 n =
      (n land 0xFFFFFFFF) - (if n land 0x80000000 <> 0 then 1 lsl 32 else 0)
    in
    if depth = 0 || G.int_bound 2 st = 0 then
      match G.int_bound 3 st with
      | 0 ->
          let n = G.int_bound 100 st in
          (string_of_int n, fun _ _ -> n)
      | 1 -> ("a", fun a _ -> a)
      | 2 -> ("b", fun _ b -> b)
      | _ ->
          let n = G.int_bound 50 st - 25 in
          (Printf.sprintf "(%d)" n, fun _ _ -> n)
    else
      let s1, f1 = gen (depth - 1) st in
      let s2, f2 = gen (depth - 1) st in
      match G.int_bound 7 st with
      | 0 -> (Printf.sprintf "(%s + %s)" s1 s2, fun a b -> wrap32 (f1 a b + f2 a b))
      | 1 -> (Printf.sprintf "(%s - %s)" s1 s2, fun a b -> wrap32 (f1 a b - f2 a b))
      | 2 -> (Printf.sprintf "(%s * %s)" s1 s2, fun a b -> wrap32 (f1 a b * f2 a b))
      | 3 -> (Printf.sprintf "(%s & %s)" s1 s2, fun a b -> f1 a b land f2 a b)
      | 4 -> (Printf.sprintf "(%s | %s)" s1 s2, fun a b -> f1 a b lor f2 a b)
      | 5 -> (Printf.sprintf "(%s ^ %s)" s1 s2, fun a b -> f1 a b lxor f2 a b)
      | 6 ->
          (Printf.sprintf "(%s < %s)" s1 s2,
           fun a b -> if f1 a b < f2 a b then 1 else 0)
      | _ ->
          (Printf.sprintf "(%s == %s)" s1 s2,
           fun a b -> if f1 a b = f2 a b then 1 else 0)
  in
  let arbitrary =
    QCheck.make
      (G.map2 (fun eg (a, b) -> (eg, a, b))
         (fun st -> gen 4 st)
         (G.pair (G.int_range (-1000) 1000) (G.int_range (-1000) 1000)))
      ~print:(fun ((s, _), a, b) -> Printf.sprintf "%s with a=%d b=%d" s a b)
  in
  QCheck.Test.make ~count:150 ~name:"random int expressions match OCaml model"
    arbitrary
    (fun ((text, model), a, b) ->
      let src =
        Printf.sprintf
          "int main() { int a, b; a = %d; b = %d; printf(\"%%d\", %s); return 0; }"
          a b text
      in
      let out = interp_output (compile src) in
      out = string_of_int (model a b))

let printf_formats () =
  let src =
    {|int main() {
        printf("[%5d|%-5d|%05d]\n", 42, 42, 42);
        printf("[%8.3f|%.1f|%g|%e]\n", 3.14159, 2.5, 0.125, 1500.0);
        printf("[%10s|%c%c]\n", "hi", 'o', 'k');
        printf("100%%\n");
        return 0;
      }|}
  in
  Alcotest.(check string) "formats"
    "[   42|42   |00042]\n[   3.142|2.5|0.125|1.500000e+03]\n[        hi|ok]\n100%\n"
    (interp_output (compile src));
  (* the simulator prints identically *)
  Alcotest.(check string) "titan agrees"
    (interp_output (compile src))
    (titan_output (compile src))

let tests =
  [
    Alcotest.test_case "arithmetic" `Quick arithmetic;
    Alcotest.test_case "int wrap-around" `Quick int_wrap;
    Alcotest.test_case "conversions" `Quick float_truncation;
    Alcotest.test_case "char semantics" `Quick char_semantics;
    Alcotest.test_case "recursion" `Quick recursion;
    Alcotest.test_case "address of scalar" `Quick address_of_scalar;
    Alcotest.test_case "globals across calls" `Quick global_state_across_calls;
    Alcotest.test_case "static locals" `Quick static_locals;
    Alcotest.test_case "math builtins" `Quick math_builtins;
    Alcotest.test_case "printf formats" `Quick printf_formats;
    Alcotest.test_case "timeout" `Quick infinite_loop_times_out;
    Alcotest.test_case "runtime errors" `Quick runtime_errors;
    QCheck_alcotest.to_alcotest expr_prop;
  ]
