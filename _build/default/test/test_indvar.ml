(* Induction-variable substitution tests (paper §5.3, experiment E5):
   temp chains collapse to closed forms, the blocking/backtracking
   heuristic converges, and semantics are preserved. *)

open Helpers

let o1 = { Vpc.o1 with Vpc.strength_reduction = false }

let star_copy_becomes_subscript () =
  (* §5.3's *a++ = *b++ example *)
  let src =
    {|void copy(float *a, float *b, int n) {
        while (n) {
          *a++ = *b++;
          n--;
        }
      }|}
  in
  let il = func_il ~options:o1 src "copy" in
  (* the key assignment in *(a + 4*i) = *(b + 4*i) form *)
  check_contains "closed-form store" ~needle:"a_init" il;
  check_contains "loop index form" ~needle:"4 * dummy" il;
  (* temp chains and updates are dead-coded away *)
  check_not_contains "no pointer updates left" ~needle:"a = " il

let explicit_aux_induction () =
  (* the classic IV = N; A(IV) = ...; IV = IV - 1 pattern *)
  let src =
    {|float a[100], b[100];
      void f(int n) {
        int i, iv;
        iv = n;
        for (i = 0; i < n; i++) {
          a[iv - 1] = a[iv - 1] + b[i];
          iv = iv - 1;
        }
      }|}
  in
  let il = func_il ~options:o1 src "f" in
  check_contains "iv_init copy" ~needle:"iv_init" il

let multiple_updates_sum () =
  let src =
    {|void f(float *p, int n) {
        int i;
        for (i = 0; i < n; i++) {
          *p++ = 1.0;
          *p++ = 2.0;
        }
      }|}
  in
  (* p advances by 8 bytes per iteration; both stores get closed forms *)
  let il = func_il ~options:o1 src "f" in
  check_contains "8-byte stride" ~needle:"8 * dummy" il

let reduction_not_an_iv () =
  (* s += a[i]: delta is not invariant, s must stay untouched *)
  let src =
    {|float a[50];
      float f(int n) {
        float s;
        int i;
        s = 0.0;
        for (i = 0; i < n; i++) s += a[i];
        return s;
      }|}
  in
  let il = func_il ~options:o1 src "f" in
  check_not_contains "no s_init" ~needle:"s_init" il;
  check_contains "reduction stays" ~needle:"s = s +" il

let blocking_chain_passes () =
  (* a chain t1 = p; p = t1 + 4; use t1 — recognized within bounded
     passes; stats expose the §5.3 pass behaviour *)
  let src =
    {|void f(float *p, float *q, int n) {
        while (n) {
          *p++ = *q++;
          n--;
        }
      }|}
  in
  let prog = compile src in
  List.iter
    (fun f -> ignore (Vpc.Transform.While_to_do.run prog f))
    prog.Vpc.Il.Prog.funcs;
  let stats = Vpc.Transform.Indvar.new_stats () in
  List.iter
    (fun f -> ignore (Vpc.Transform.Indvar.run ~stats prog f))
    prog.Vpc.Il.Prog.funcs;
  Alcotest.(check int) "three IVs (p, q, n)" 3 stats.ivs_found;
  Alcotest.(check bool) "a couple of passes at most" true
    (stats.max_passes_one_loop <= 3);
  Alcotest.(check bool) "substitutions happened" true (stats.substitutions > 0)

let volatile_not_substituted () =
  let src =
    {|volatile int vcount;
      void f(float *a, int n) {
        int i;
        for (i = 0; i < n; i++) {
          a[i] = vcount;   /* volatile read must stay in the loop */
        }
      }|}
  in
  let il = func_il ~options:o1 src "f" in
  check_contains "volatile read survives" ~needle:"vcount" il

let nested_loops () =
  assert_all_configs_agree "nested loop ivs"
    {|float m[8][8];
      int main() {
        int i, j;
        float *p;
        p = &m[0][0];
        for (i = 0; i < 8; i++)
          for (j = 0; j < 8; j++)
            *p++ = i * 10 + j;
        printf("%g %g %g\n", m[0][0], m[3][5], m[7][7]);
        return 0;
      }|}

let semantics_preserved () =
  List.iter
    (fun (name, src) -> assert_all_configs_agree name src)
    [
      ( "pointer copy",
        {|float a[64], b[64];
          int main() {
            float *p, *q;
            int n, k;
            float s;
            for (k = 0; k < 64; k++) b[k] = k * 1.5f;
            p = a; q = b; n = 64;
            while (n) { *p++ = *q++; n--; }
            s = 0;
            for (k = 0; k < 64; k++) s += a[k];
            printf("%g\n", s);
            return 0;
          }|} );
      ( "live-out induction variable",
        {|int main() {
            int i, n;
            char *p;
            char buf[16];
            p = buf;
            for (i = 0; i < 10; i++) *p++ = 'a' + i;
            *p = 0;
            n = p - buf;     /* p's final value is observable */
            printf("%s %d\n", buf, n);
            return 0;
          }|} );
      ( "iv used after loop",
        {|int main() {
            int i, iv;
            iv = 100;
            for (i = 0; i < 10; i++) iv = iv - 3;
            printf("%d\n", iv);
            return 0;
          }|} );
      ( "downward access",
        {|float a[32];
          int main() {
            int i, iv;
            float s;
            iv = 32;
            for (i = 0; i < 32; i++) { a[iv - 1] = i; iv--; }
            s = 0;
            for (i = 0; i < 32; i++) s += a[i] * (i + 1);
            printf("%g\n", s);
            return 0;
          }|} );
    ]

(* generated k-deep temp chains: t0 = p; t1 = t0; ...; p = tk + 4 *)
let deep_chain_generated () =
  let make_chain depth =
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      "float a[40];\nint main() {\n  float *p;\n  int n, k;\n  float s;\n";
    Buffer.add_string buf "  p = a; n = 40;\n  while (n) {\n";
    Buffer.add_string buf "    float *t0;\n";
    for i = 1 to depth do
      Buffer.add_string buf (Printf.sprintf "    float *t%d;\n" i)
    done;
    Buffer.add_string buf "    t0 = p;\n";
    for i = 1 to depth do
      Buffer.add_string buf (Printf.sprintf "    t%d = t%d;\n" i (i - 1))
    done;
    Buffer.add_string buf
      (Printf.sprintf "    *t%d = 40 - n;\n    p = t%d + 4;\n    n--;\n  }\n"
         depth depth);
    Buffer.add_string buf
      "  s = 0;\n  for (k = 0; k < 40; k++) s += a[k];\n  printf(\"%g\\n\", s);\n  return 0;\n}\n";
    Buffer.contents buf
  in
  List.iter
    (fun depth ->
      let src = make_chain depth in
      let reference = interp_output (compile ~options:Vpc.o0 src) in
      let out = interp_output (compile ~options:Vpc.o1 src) in
      Alcotest.(check string)
        (Printf.sprintf "chain depth %d" depth)
        reference out)
    [ 0; 1; 2; 4 ]

let interleaved_blocking_chain () =
  (* recognition of p_j requires p_(j-1): the blocking bookkeeping defers
     and re-examines; semantics must survive any number of passes *)
  let make depth =
    let buf = Buffer.create 512 in
    Buffer.add_string buf "float out[64];\nint main()\n{\n  int n, k;\n  float s;\n";
    for j = 0 to depth do
      Buffer.add_string buf (Printf.sprintf "  int p%d; int t%d;\n" j (max j 1))
    done;
    for j = 0 to depth do
      Buffer.add_string buf (Printf.sprintf "  p%d = %d;\n" j j)
    done;
    Buffer.add_string buf "  n = 40;\n  while (n) {\n";
    for j = 1 to depth do
      Buffer.add_string buf (Printf.sprintf "    t%d = p%d + p%d;\n" j j (j - 1))
    done;
    Buffer.add_string buf "    p0 = p0 + 4;\n";
    for j = 1 to depth do
      Buffer.add_string buf (Printf.sprintf "    p%d = t%d + 8 - p%d;\n" j j (j - 1))
    done;
    Buffer.add_string buf
      (Printf.sprintf "    out[p%d & 63] += 1.0f;\n    n--;\n  }\n" depth);
    Buffer.add_string buf
      "  s = 0;\n  for (k = 0; k < 64; k++) s += out[k] * (k + 1);\n\
      \  printf(\"%g\\n\", s);\n  return 0;\n}\n";
    Buffer.contents buf
  in
  List.iter
    (fun depth ->
      let src = make depth in
      let reference = interp_output (compile ~options:Vpc.o0 src) in
      List.iter
        (fun (lname, options) ->
          Alcotest.(check string)
            (Printf.sprintf "depth %d at %s" depth lname)
            reference
            (interp_output (compile ~options src)))
        all_levels)
    [ 1; 3; 6 ]

let tests =
  [
    Alcotest.test_case "*a++ = *b++ (§5.3)" `Quick star_copy_becomes_subscript;
    Alcotest.test_case "explicit auxiliary IV" `Quick explicit_aux_induction;
    Alcotest.test_case "multiple updates" `Quick multiple_updates_sum;
    Alcotest.test_case "reduction untouched" `Quick reduction_not_an_iv;
    Alcotest.test_case "blocking/backtracking stats" `Quick blocking_chain_passes;
    Alcotest.test_case "volatile not substituted" `Quick volatile_not_substituted;
    Alcotest.test_case "nested loops" `Quick nested_loops;
    Alcotest.test_case "semantics preserved" `Quick semantics_preserved;
    Alcotest.test_case "deep temp chains" `Quick deep_chain_generated;
    Alcotest.test_case "interleaved blocking chains" `Quick interleaved_blocking_chain;
  ]
