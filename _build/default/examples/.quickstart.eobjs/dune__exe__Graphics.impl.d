examples/graphics.ml: List Printf Vpc
