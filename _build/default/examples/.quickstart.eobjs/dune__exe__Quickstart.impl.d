examples/quickstart.ml: Printf Vpc
