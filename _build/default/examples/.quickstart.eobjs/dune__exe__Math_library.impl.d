examples/math_library.ml: Filename Printf Sys Unix Vpc
