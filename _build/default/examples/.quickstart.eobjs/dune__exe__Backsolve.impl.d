examples/backsolve.ml: Printf Vpc
