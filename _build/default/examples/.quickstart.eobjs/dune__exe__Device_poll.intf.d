examples/device_poll.mli:
