examples/device_poll.ml: Printf Vpc
