examples/daxpy_inline.ml: List Printf String Vpc
