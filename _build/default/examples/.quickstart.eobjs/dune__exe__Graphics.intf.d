examples/graphics.mli:
