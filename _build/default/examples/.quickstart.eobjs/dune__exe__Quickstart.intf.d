examples/quickstart.mli:
