examples/backsolve.mli:
