examples/math_library.mli:
