examples/daxpy_inline.mli:
