/* Two vectorizable loops over global float arrays (see quickstart.ml). */
float a[1000], b[1000], c[1000];

int main()
{
  int i;
  for (i = 0; i < 1000; i++) {
    b[i] = i * 0.5f;
    c[i] = 1000 - i;
  }
  for (i = 0; i < 1000; i++)
    a[i] = b[i] * 2.0f + c[i];
  printf("a[0]=%g a[500]=%g a[999]=%g\n", a[0], a[500], a[999]);
  return 0;
}
