/* Graphics workloads (§2, §5.2): 4x4 matrix transforms over a vertex
   list.  The 4-element loops come out as bare short vectors (no strip
   loop); the per-vertex loop vectorizes and spreads across processors
   (see graphics.ml). */
#define NVERTS 512

float xs[NVERTS], ys[NVERTS], zs[NVERTS], ws[NVERTS];
float txs[NVERTS], tys[NVERTS], tzs[NVERTS], tws[NVERTS];
float m[4][4];

/* transform the vertex list by m (structure-of-arrays layout) */
void transform_all()
{
  int v;
  for (v = 0; v < NVERTS; v++) {
    txs[v] = m[0][0] * xs[v] + m[0][1] * ys[v] + m[0][2] * zs[v] + m[0][3] * ws[v];
    tys[v] = m[1][0] * xs[v] + m[1][1] * ys[v] + m[1][2] * zs[v] + m[1][3] * ws[v];
    tzs[v] = m[2][0] * xs[v] + m[2][1] * ys[v] + m[2][2] * zs[v] + m[2][3] * ws[v];
    tws[v] = m[3][0] * xs[v] + m[3][1] * ys[v] + m[3][2] * zs[v] + m[3][3] * ws[v];
  }
}

/* one 4-vector by 4x4 matrix: trip count 4, short vectors */
float vin[4], vout[4];
void transform_one()
{
  int i;
  for (i = 0; i < 4; i++)
    vout[i] = m[i][0] * vin[0] + m[i][1] * vin[1]
            + m[i][2] * vin[2] + m[i][3] * vin[3];
}

int main()
{
  int i, j;
  float checksum;
  for (i = 0; i < 4; i++)
    for (j = 0; j < 4; j++)
      m[i][j] = (i == j) ? 1.5f : 0.25f;
  for (i = 0; i < NVERTS; i++) {
    xs[i] = i * 0.1f;
    ys[i] = i * 0.2f;
    zs[i] = i * 0.3f;
    ws[i] = 1.0f;
  }
  transform_all();
  for (i = 0; i < 4; i++) vin[i] = i + 1.0f;
  transform_one();
  checksum = 0.0;
  for (i = 0; i < NVERTS; i++) checksum += txs[i] + tys[i] + tzs[i] + tws[i];
  printf("checksum=%g vout=[%g %g %g %g]\n", checksum,
         vout[0], vout[1], vout[2], vout[3]);
  return 0;
}
