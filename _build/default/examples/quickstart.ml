(* Quickstart: compile a small C program with the vectorizing pipeline,
   look at the IL it produces, and run it on the Titan simulator.

     dune exec examples/quickstart.exe *)

let source =
  {|
float a[1000], b[1000], c[1000];

int main()
{
  int i;
  for (i = 0; i < 1000; i++) {
    b[i] = i * 0.5f;
    c[i] = 1000 - i;
  }
  for (i = 0; i < 1000; i++)
    a[i] = b[i] * 2.0f + c[i];
  printf("a[0]=%g a[500]=%g a[999]=%g\n", a[0], a[500], a[999]);
  return 0;
}
|}

let () =
  (* compile at full optimization: inline + vectorize + parallelize *)
  let prog, stats = Vpc.compile ~options:Vpc.o3 source in

  print_endline "=== optimized IL (note the `do parallel` strip loops) ===";
  print_string
    (Vpc.Il.Pp.func_to_string prog (Vpc.Il.Prog.func_exn prog "main"));

  Printf.printf "\n=== optimization summary ===\n";
  Printf.printf "while loops converted to DO loops: %d\n"
    stats.while_to_do.converted;
  Printf.printf "induction variables substituted:   %d\n"
    stats.indvar.ivs_found;
  Printf.printf "loops vectorized:                  %d\n"
    stats.vectorize.loops_vectorized;
  Printf.printf "loops parallelized:                %d\n"
    stats.vectorize.loops_parallelized;

  (* run on a two-processor Titan *)
  let config = { Vpc.Titan.Machine.default_config with procs = 2 } in
  let result = Vpc.run_titan ~config prog in
  Printf.printf "\n=== program output (2-processor Titan) ===\n%s"
    result.stdout_text;
  Printf.printf "\ncycles=%d  fp_ops=%d  rate=%.2f MFLOPS\n"
    result.metrics.cycles result.metrics.fp_ops result.mflops_rate;

  (* compare against the naive scalar compilation *)
  let naive, _ = Vpc.compile ~options:Vpc.o0 source in
  let nresult =
    Vpc.run_titan
      ~config:
        { Vpc.Titan.Machine.default_config with
          sched = Vpc.Titan.Machine.Sequential }
      naive
  in
  Printf.printf "naive scalar: cycles=%d  rate=%.2f MFLOPS  (speedup %.1fx)\n"
    nresult.metrics.cycles nresult.mflops_rate
    (float_of_int nresult.metrics.cycles /. float_of_int result.metrics.cycles)
