/* The paper's §6 backsolve: a loop-carried flow dependence of distance 1
   blocks vectorization, but scalar replacement + strength reduction +
   overlap scheduling still speed it up (see backsolve.ml). */
float x[2001], y[2000], z[2000];

void backsolve(int n)
{
  float *p, *q;
  int i;
  p = &x[1];
  q = &x[0];
  for (i = 0; i < n - 2; i++)
    p[i] = z[i] * (y[i] - q[i]);
}

int main()
{
  int i;
  for (i = 0; i < 2000; i++) { y[i] = i * 0.25f; z[i] = 0.5f; }
  x[0] = 2.0f;
  backsolve(2000);
  printf("x[1]=%g x[100]=%g x[1998]=%g\n", x[1], x[100], x[1998]);
  return 0;
}
