(* Procedure catalogs (§7): "math libraries can be 'compiled' into
   databases and used as a base for inlining, much as include directories
   are used as a source for header files."

   This example compiles a small math library into a catalog file, then
   compiles a client program against it: the client only declares the
   prototypes, yet the calls inline across the "file" boundary and the
   loop vectorizes.

     dune exec examples/math_library.exe *)

let library_source =
  {|
/* a miniature libm/BLAS, compiled once into a catalog */
static float half = 0.5f;

float lerp(float a, float b, float t) { return a + (b - a) * t; }
float sq(float x) { return x * x; }
float midpoint(float a, float b) { return lerp(a, b, half); }
|}

let client_source =
  {|
float lerp(float a, float b, float t);
float sq(float x);
float midpoint(float a, float b);

float xs[256], ys[256], zs[256];

int main()
{
  int i;
  float s;
  for (i = 0; i < 256; i++) { xs[i] = i * 0.1f; ys[i] = 25.6f - i * 0.1f; }
  for (i = 0; i < 256; i++)
    zs[i] = sq(midpoint(xs[i], ys[i]));
  s = 0;
  for (i = 0; i < 256; i++) s += zs[i];
  printf("sum=%g z0=%g\n", s, zs[0]);
  return 0;
}
|}

let () =
  (* "compile" the library into a catalog *)
  let library, _ = Vpc.compile ~options:Vpc.o0 library_source in
  let catalog_file = Filename.temp_file "mathlib" ".vcat" in
  Vpc.Inline.Catalog.save library catalog_file;
  Printf.printf "library catalog written to %s (%d bytes)\n" catalog_file
    (Unix.stat catalog_file).Unix.st_size;

  (* compile the client against it *)
  let options = { Vpc.o3 with Vpc.catalogs = [ catalog_file ] } in
  let prog, stats = Vpc.compile ~options client_source in
  Sys.remove catalog_file;

  Printf.printf "calls inlined across the catalog boundary: %d\n"
    stats.inline.calls_inlined;
  Printf.printf "loops vectorized: %d\n\n" stats.vectorize.loops_vectorized;
  print_endline "=== main after cross-file inlining + vectorization ===";
  print_string
    (Vpc.Il.Pp.func_to_string prog (Vpc.Il.Prog.func_exn prog "main"));

  let r =
    Vpc.run_titan
      ~config:{ Vpc.Titan.Machine.default_config with procs = 2 }
      prog
  in
  Printf.printf "\n%s(%d cycles, %.2f MFLOPS on 2 processors)\n" r.stdout_text
    r.metrics.cycles r.mflops_rate;

  (* the same client with calls left in place, for contrast — the catalog
     file is gone, so merge the library program in directly *)
  let client2 = Vpc.parse client_source in
  Vpc.Inline.Catalog.import ~into:client2 library;
  ignore (Vpc.optimize ~options:{ Vpc.o3 with Vpc.inline = `None } client2);
  let r2 = Vpc.run_titan client2 in
  Printf.printf "without inlining: %d cycles (%.1fx slower)\n"
    r2.metrics.cycles
    (float_of_int r2.metrics.cycles /. float_of_int r.metrics.cycles)
