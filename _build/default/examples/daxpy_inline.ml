(* The paper's §9 walkthrough, reproduced stage by stage: a C daxpy whose
   pointer parameters prevent vectorization is inlined into its caller,
   where constant propagation reveals the arguments (&a, &b, &c, 1.0, 100),
   the argument-aliasing problem disappears, the guards fold away, and the
   loop comes out as a `do parallel` vector strip loop that runs an order
   of magnitude faster on a two-processor Titan.

     dune exec examples/daxpy_inline.exe *)

let source =
  {|
void daxpy(float *x, float *y, float *z, float alpha, int n)
{
  if (n <= 0)
    return;
  if (alpha == 0)
    return;
  for (; n; n--)
    *x++ = *y++ + alpha * *z++;
}

float a[100], b[100], c[100];

int main()
{
  int i;
  for (i = 0; i < 100; i++) { b[i] = 3 * i; c[i] = i + 1; }
  daxpy(a, b, c, 1.0, 100);
  printf("a[0]=%g a[1]=%g a[99]=%g\n", a[0], a[1], a[99]);
  return 0;
}
|}

let stage_of_interest = [ "front-end"; "inline"; "final" ]

let () =
  print_endline "=== §9: compiling daxpy through the full pipeline ===\n";
  let dump stage text =
    if List.mem stage stage_of_interest then begin
      Printf.printf "------------------------- after %s\n" stage;
      (* show main only, as the paper's listings do *)
      let lines = String.split_on_char '\n' text in
      let in_main = ref false in
      List.iter
        (fun line ->
          if line = "int main()" then in_main := true;
          if !in_main then print_endline line;
          if !in_main && line = "}" then in_main := false)
        lines
    end
  in
  let options = { Vpc.o3 with Vpc.dump = Some dump } in
  let prog, stats = Vpc.compile ~options source in

  Printf.printf "daxpy inlined %d time(s); %d loop(s) vectorized, %d parallelized\n"
    stats.inline.calls_inlined stats.vectorize.loops_vectorized
    stats.vectorize.loops_parallelized;

  (* the paper: "On a two processor Titan, this code executes 12 times
     faster than the scalar version of the same routine." *)
  let scalar, _ = Vpc.compile ~options:Vpc.o0 source in
  let t_scalar =
    Vpc.run_titan
      ~config:
        { Vpc.Titan.Machine.default_config with
          sched = Vpc.Titan.Machine.Sequential }
      scalar
  in
  let t_vector =
    Vpc.run_titan
      ~config:{ Vpc.Titan.Machine.default_config with procs = 2 }
      prog
  in
  Printf.printf "\nscalar Titan: %7d cycles   %s" t_scalar.metrics.cycles
    t_scalar.stdout_text;
  Printf.printf "2-proc Titan: %7d cycles   %s" t_vector.metrics.cycles
    t_vector.stdout_text;
  Printf.printf "speedup: %.1fx (paper: 12x for the daxpy region)\n"
    (float_of_int t_scalar.metrics.cycles
    /. float_of_int t_vector.metrics.cycles)
