(* The paper's §6 example: a backsolve loop that cannot be vectorized
   (loop-carried flow dependence of distance 1), but which the
   dependence-driven scalar optimizations — scalar replacement, strength
   reduction, and overlap scheduling — speed up several-fold.

   The paper reports 0.5 MFLOPS for the scalar compilation and
   1.9 MFLOPS after the dependence-driven optimizations.

     dune exec examples/backsolve.exe *)

let source =
  {|
float x[2001], y[2000], z[2000];

void backsolve(int n)
{
  float *p, *q;
  int i;
  p = &x[1];
  q = &x[0];
  for (i = 0; i < n - 2; i++)
    p[i] = z[i] * (y[i] - q[i]);
}

int main()
{
  int i;
  for (i = 0; i < 2000; i++) { y[i] = i * 0.25f; z[i] = 0.5f; }
  x[0] = 2.0f;
  backsolve(2000);
  printf("x[1]=%g x[100]=%g x[1998]=%g\n", x[1], x[100], x[1998]);
  return 0;
}
|}

let () =
  (* Timing runs call backsolve directly (entry point override), so the
     measurement isolates the kernel from main's init loop. *)
  let time options sched name =
    let prog, _ = Vpc.compile ~options source in
    let config = { Vpc.Titan.Machine.default_config with sched } in
    let r =
      Vpc.run_titan ~config ~entry:"backsolve"
        ~args:[ Vpc.Titan.Machine.Vi 2000 ] prog
    in
    Printf.printf "%-30s cycles=%8d  fp=%5d  %5.2f MFLOPS\n" name
      r.metrics.cycles r.metrics.fp_ops r.mflops_rate;
    r
  in
  print_endline
    "backsolve: p[i] = z[i] * (y[i] - q[i])   (p = &x[1], q = &x[0])";
  print_endline
    "paper (§6): 0.5 MFLOPS scalar -> 1.9 MFLOPS optimized (3.8x)\n";
  let naive = time Vpc.o0 Vpc.Titan.Machine.Sequential "naive scalar (sequential)" in
  ignore (time Vpc.o0 Vpc.Titan.Machine.Overlap_conservative "scalar + unit overlap");
  let opt = time Vpc.o3 Vpc.Titan.Machine.Overlap_full "dependence-driven (§6)" in
  Printf.printf "\nspeedup over naive: %.2fx\n"
    (float_of_int naive.metrics.cycles /. float_of_int opt.metrics.cycles);

  (* correctness: both compilations print the same results *)
  let out options =
    (Vpc.run_interp (fst (Vpc.compile ~options source))).stdout_text
  in
  assert (out Vpc.o0 = out Vpc.o3);
  Printf.printf "\nresults (identical at O0 and O3): %s" (out Vpc.o3);

  (* show the transformed kernel: the §6 listing with f_reg and the
     sr_ptr pointer temps *)
  let prog, _ = Vpc.compile ~options:Vpc.o3 source in
  print_endline "\n=== the transformed kernel (compare §6's listing) ===";
  print_string
    (Vpc.Il.Pp.func_to_string prog (Vpc.Il.Prog.func_exn prog "main"))
