(* The paper's volatile example (§1): low-level operating-system code that
   busy-waits on a status register.

       keyboard_status = 0;
       while (!keyboard_status);

   Without `volatile`, this looks like an infinite loop and optimizers
   would be entitled to fold it; with `volatile`, every phase of the
   compiler leaves the re-reads alone.  This example compiles the loop at
   full optimization and runs it under the interpreter with a hook that
   models the device flipping the register after a few reads.

     dune exec examples/device_poll.exe *)

let source =
  {|
volatile int keyboard_status;
int spins;

int wait_for_key()
{
  keyboard_status = 0;
  while (!keyboard_status)
    spins++;
  return keyboard_status;
}

int main()
{
  int code;
  code = wait_for_key();
  printf("key=%d after %d spins\n", code, spins);
  return 0;
}
|}

let () =
  let prog, _ = Vpc.compile ~options:Vpc.o3 source in
  print_endline "=== wait_for_key at -O3: the volatile loop survives ===";
  print_string
    (Vpc.Il.Pp.func_to_string prog (Vpc.Il.Prog.func_exn prog "wait_for_key"));
  (* the "device": raises the key code on the 5th read *)
  let reads = ref 0 in
  let device (v : Vpc.Il.Var.t) =
    if v.name = "keyboard_status" then begin
      incr reads;
      Some (if !reads >= 5 then Vpc.Il.Interp.V_int 42 else Vpc.Il.Interp.V_int 0)
    end
    else None
  in
  let result = Vpc.Il.Interp.run ~on_volatile_read:device prog in
  Printf.printf "\n=== run with a simulated device ===\n%s" result.stdout_text;
  Printf.printf "(the register was read %d times)\n" !reads
