lib/vectorize/vectorize.mli: Func Prog Vpc_il
