lib/vectorize/vectorize.ml: Array Builder Expr Func Graph Hashtbl List Option Prog Stmt Subscript Ty Var Vpc_analysis Vpc_dependence Vpc_il
