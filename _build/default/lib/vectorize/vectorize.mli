(** The vectorizer and parallelizer: Allen–Kennedy codegen over the
    statement dependence graph.  SCCs of a DO-loop body are distributed
    in topological order; dependence-free assignments become vector
    statements, strip-mined to the machine vector length and spread over
    processors as [do parallel] (the §9 form); statement groups carrying
    a dependence cycle stay sequential; loops with a known tiny trip
    count get bare short-vector code with no strip loop (§5.2's graphics
    remark). *)

open Vpc_il

type options = {
  vectorize : bool;
  parallelize : bool;
  vlen : int;             (** strip length; the paper uses 32 *)
  assume_noalias : bool;  (** pointer params get Fortran semantics *)
}

val default_options : options

type stats = {
  mutable loops_examined : int;
  mutable loops_vectorized : int;
  mutable loops_parallelized : int;
  mutable stmts_vectorized : int;
  mutable loops_rejected_shape : int;       (** calls / control flow *)
  mutable loops_rejected_dependence : int;  (** carried cycles everywhere *)
  mutable short_vector_loops : int;         (** no strip loop needed *)
}

val new_stats : unit -> stats
val run : ?options:options -> ?stats:stats -> Prog.t -> Func.t -> bool
