(** The Titan timing model.  Parameters were calibrated once against the
    paper's two published backsolve rates (§6: 0.5 and 1.9 MFLOPS) and
    then left alone; every experiment uses this single model. *)

type unit_ = IU | FPU | MEM | CTRL

(** Per-operation cost: the execution unit, the issue interval (pipelined
    units accept one per cycle), and the result latency. *)
type op_cost = { unit_ : unit_; issue : int; latency : int }

val imov : op_cost
val ialu : op_cost
val imul : op_cost
val idiv : op_cost
val falu : op_cost
val fmul : op_cost
val fdiv : op_cost
val fcvt : op_cost
val load : op_cost
val store : op_cost
val branch : op_cost
val jump : op_cost

(** Vector operations cost startup + one element per cycle. *)
val vector_startup_mem : int

val vector_startup_fpu : int
val viota_startup : int

(** Call/return overhead beyond the callee's own cycles. *)
val call_overhead : int

val ret_overhead : int

(** Synchronization closing a parallel loop. *)
val barrier_cycles : int

(** The Titan clock: 16 MHz. *)
val clock_mhz : float
