(* The Titan timing model.  Parameters are calibrated so the machine's
   published character holds: a 16 MHz multi-processor whose pipelined
   floating-point unit needs vector instructions to stay full (§2), where
   a well-scheduled scalar loop runs a few times faster than a naive one
   (§6's 0.5 → 1.9 MFLOPS) and a vectorized, two-processor loop runs an
   order of magnitude faster than scalar code (§9's 12×). *)

type unit_ = IU | FPU | MEM | CTRL

(* issue interval (pipelined units accept one op per cycle), result
   latency *)
type op_cost = { unit_ : unit_; issue : int; latency : int }

let imov = { unit_ = IU; issue = 1; latency = 1 }
let ialu = { unit_ = IU; issue = 1; latency = 1 }
let imul = { unit_ = IU; issue = 2; latency = 5 }
let idiv = { unit_ = IU; issue = 12; latency = 18 }
let falu = { unit_ = FPU; issue = 1; latency = 8 }
let fmul = { unit_ = FPU; issue = 1; latency = 8 }
let fdiv = { unit_ = FPU; issue = 12; latency = 22 }
let fcvt = { unit_ = FPU; issue = 1; latency = 4 }
let load = { unit_ = MEM; issue = 1; latency = 6 }
let store = { unit_ = MEM; issue = 1; latency = 1 }
let branch = { unit_ = CTRL; issue = 1; latency = 2 }
let jump = { unit_ = CTRL; issue = 1; latency = 1 }

(* vector operations: startup + one element per cycle *)
let vector_startup_mem = 14
let vector_startup_fpu = 8
let viota_startup = 4

(* call/return overhead beyond the callee's own cycles *)
let call_overhead = 16
let ret_overhead = 4

(* synchronization barrier closing a parallel loop *)
let barrier_cycles = 120

let clock_mhz = 16.0
