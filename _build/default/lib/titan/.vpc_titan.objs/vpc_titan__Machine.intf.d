lib/titan/machine.mli: Hashtbl Prog Vpc_il
