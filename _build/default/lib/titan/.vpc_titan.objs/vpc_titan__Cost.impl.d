lib/titan/cost.ml:
