lib/titan/codegen.ml: Array Expr Format Func Gensym Hashtbl Isa List Option Printf Prog Stmt Ty Var Vpc_il Vpc_support
