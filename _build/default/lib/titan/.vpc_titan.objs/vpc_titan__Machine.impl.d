lib/titan/machine.ml: Array Buffer Bytes Char Codegen Cost Expr Float Format Func Hashtbl Int32 Int64 Isa List Option Printf Prog Scanf String Ty Var Vpc_il
