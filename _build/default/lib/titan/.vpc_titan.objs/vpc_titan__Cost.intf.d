lib/titan/cost.mli:
