lib/titan/codegen.mli: Func Isa Prog Vpc_il
