lib/titan/isa.ml: Array Fmt Hashtbl Prog Ty Vpc_il
