(* Dependence tests on affine single-index subscripts: ZIV, strong SIV,
   and the GCD and Banerjee tests for the general case [Bane 76, Wolf 78,
   Alle 83].

   Both references run over iterations 0..U (U = trip-1, possibly
   unknown).  Reference 1 touches  D1 + c1*i,  reference 2 touches
   D2 + c2*j  with the byte distance  delta = D2 - D1  known from alias
   analysis; a dependence exists iff  c1*i - c2*j = delta  has a solution
   in range. *)

type verdict =
  | Independent
  | Dependent of { distance : int option }
      (* distance in iterations when both strides are equal and the
         solution is unique; [None] = unknown/varying.  distance > 0:
         reference 2's access happens that many iterations after
         reference 1 touches the same location. *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Conservative iteration-count bound; [None] = unknown (unbounded). *)
type bound = int option

let ziv ~delta = if delta = 0 then Dependent { distance = Some 0 } else Independent

(* strong SIV: equal strides c: c*i - c*j = delta  ⇒  i - j = delta/c *)
let strong_siv ~c ~delta ~(trip : bound) =
  if delta mod c <> 0 then Independent
  else
    let d = -(delta / c) in
    (* location touched by ref1 at iteration i equals ref2 at j = i - delta/c;
       distance (j - i after normalization) = -delta/c in our convention *)
    let in_range =
      match trip with None -> true | Some u -> abs d < u
    in
    if in_range then Dependent { distance = Some d } else Independent

(* weak-zero SIV: one reference is loop-invariant (stride 0); the other
   hits it in at most one iteration. *)
let weak_zero_siv ~c ~delta ~(trip : bound) =
  (* c*i = delta *)
  if c = 0 then if delta = 0 then Dependent { distance = None } else Independent
  else if delta mod c <> 0 then Independent
  else
    let i = delta / c in
    let in_range =
      i >= 0 && match trip with None -> true | Some u -> i < u
    in
    if in_range then Dependent { distance = None } else Independent

(* GCD test for c1*i - c2*j = delta. *)
let gcd_test ~c1 ~c2 ~delta =
  let g = gcd c1 c2 in
  if g = 0 then delta = 0
  else delta mod g = 0

(* Banerjee bounds: is delta within [min, max] of c1*i - c2*j for
   0 <= i, j <= U-1? *)
let banerjee ~c1 ~c2 ~delta ~(trip : bound) =
  match trip with
  | None -> true  (* unbounded: cannot exclude *)
  | Some u ->
      let m = u - 1 in
      if m < 0 then false
      else
        let pos x = max x 0 and neg x = min x 0 in
        let lo = (neg c1 * m) - (pos c2 * m) in
        let hi = (pos c1 * m) - (neg c2 * m) in
        delta >= lo && delta <= hi

(* Main entry: dependence between two affine references with byte strides
   [c1], [c2], and byte distance [delta] between their bases (base2 -
   base1), over [trip] iterations.  Accesses conflict on byte-address
   equality: the lowering keeps all scalar accesses width-aligned, so
   same-width references at unequal addresses never partially overlap. *)
let affine ~c1 ~c2 ~delta ~trip =
  if c1 = 0 && c2 = 0 then ziv ~delta
  else if c1 = c2 then strong_siv ~c:c1 ~delta ~trip
  else if c1 = 0 then weak_zero_siv ~c:c2 ~delta:(-delta) ~trip
  else if c2 = 0 then weak_zero_siv ~c:c1 ~delta ~trip
  else if not (gcd_test ~c1 ~c2 ~delta) then Independent
  else if not (banerjee ~c1 ~c2 ~delta ~trip) then Independent
  else Dependent { distance = None }

(* Test two references given their subscript decompositions and an alias
   verdict on their bases. *)
let references ?(assume_noalias = false) ~trip (r1 : Subscript.reference)
    (r2 : Subscript.reference) structs : verdict =
  ignore structs;
  match r1.Subscript.affine, r2.Subscript.affine with
  | Some a1, Some a2 -> (
      match Alias.bases ~assume_noalias a1.Subscript.base a2.Subscript.base with
      | Alias.No_alias -> Independent
      | Alias.Must_alias delta ->
          affine ~c1:a1.Subscript.coeff ~c2:a2.Subscript.coeff ~delta ~trip
      | Alias.May_alias -> Dependent { distance = None })
  | _ ->
      (* a non-affine reference may touch anything its base can reach *)
      (match
         ( Option.map (fun (a : Subscript.affine) -> a.Subscript.base) r1.affine,
           Option.map (fun (a : Subscript.affine) -> a.Subscript.base) r2.affine )
       with
      | Some b1, Some b2 when Alias.bases ~assume_noalias b1 b2 = Alias.No_alias ->
          Independent
      | _ -> Dependent { distance = None })
