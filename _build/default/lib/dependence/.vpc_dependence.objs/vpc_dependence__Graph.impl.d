lib/dependence/graph.ml: Array Hashtbl List Option Stmt Subscript Test Vpc_il
