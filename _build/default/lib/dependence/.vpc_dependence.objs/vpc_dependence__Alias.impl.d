lib/dependence/alias.ml: Expr List Sexp Ty Vpc_il Vpc_support
