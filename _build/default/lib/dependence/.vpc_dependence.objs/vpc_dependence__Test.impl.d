lib/dependence/test.ml: Alias Option Subscript
