lib/dependence/subscript.mli: Expr Stmt Ty Vpc_il
