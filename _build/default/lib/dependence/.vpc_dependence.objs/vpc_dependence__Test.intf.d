lib/dependence/test.mli: Hashtbl Subscript Vpc_il
