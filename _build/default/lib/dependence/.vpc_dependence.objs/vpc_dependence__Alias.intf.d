lib/dependence/alias.mli: Expr Vpc_il
