lib/dependence/subscript.ml: Expr List Option Stmt Ty Vpc_il
