lib/dependence/graph.mli: Expr Stmt Subscript Vpc_il
