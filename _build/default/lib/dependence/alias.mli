(** Base-address alias analysis.  C imposes no constraints on argument
    aliasing (§1), so distinct pointer variables may address the same
    storage; only named objects are certainly distinct.  The paper's
    escape hatches are reproduced: the per-loop pragma and the compiler
    option giving pointer parameters Fortran semantics. *)

open Vpc_il

type root =
  | Object of int   (** [&v]: distinct variables are distinct storage *)
  | Pointer of int  (** the (invariant) value of pointer variable [p] *)

(** [root + offset + syms]: constant byte offset plus symbolic invariant
    addends (e.g. an outer loop's [32*i]). *)
type canon = { root : root option; offset : int; syms : Expr.t list }

type result =
  | No_alias
  | Must_alias of int  (** byte distance: base2 - base1 *)
  | May_alias

val canonicalize : Expr.t -> canon option

(** Alias verdict for two base addresses.  Same root and equal symbolic
    parts give an exact distance; distinct named objects never alias;
    [assume_noalias] separates unrelated pointers. *)
val bases : ?assume_noalias:bool -> Expr.t -> Expr.t -> result
