lib/transform/doacross.ml: Array Builder Expr Func Hashtbl List Option Prog Stmt Var Vpc_il
