lib/transform/strength_reduction.ml: Builder Expr Func Hashtbl List Prog Stmt Subscript Ty Var Vpc_analysis Vpc_dependence Vpc_il
