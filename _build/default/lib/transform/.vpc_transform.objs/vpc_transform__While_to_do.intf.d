lib/transform/while_to_do.mli: Func Prog Vpc_il
