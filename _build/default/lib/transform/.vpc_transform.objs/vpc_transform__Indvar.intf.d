lib/transform/indvar.mli: Func Prog Vpc_il
