lib/transform/scalar_replace.mli: Func Prog Vpc_il
