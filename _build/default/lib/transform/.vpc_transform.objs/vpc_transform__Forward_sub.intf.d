lib/transform/forward_sub.mli: Func Prog Vpc_il
