lib/transform/strength_reduction.mli: Func Prog Vpc_il
