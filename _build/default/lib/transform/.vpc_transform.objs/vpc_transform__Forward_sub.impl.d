lib/transform/forward_sub.ml: Array Expr Func Hashtbl List Option Prog Stmt Var Vpc_analysis Vpc_il
