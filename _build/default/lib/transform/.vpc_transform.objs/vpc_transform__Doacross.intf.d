lib/transform/doacross.mli: Func Prog Vpc_il
