lib/transform/while_to_do.ml: Builder Expr Func List Prog Stmt Ty Var Vpc_analysis Vpc_il
