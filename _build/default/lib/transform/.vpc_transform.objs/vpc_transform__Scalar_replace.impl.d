lib/transform/scalar_replace.ml: Alias Builder Expr Func Hashtbl List Option Prog Stmt Subscript Ty Var Vpc_analysis Vpc_dependence Vpc_il
