lib/transform/indvar.ml: Array Builder Expr Func Hashtbl List Option Printf Prog Stmt Ty Var Vpc_analysis Vpc_il
