(** Scalar replacement of regular cross-iteration references (paper §6):
    in the backsolve loop the read [q[i]] fetches the value stored as
    [p[i-1]] one iteration earlier; the value is "pulled up into
    registers", removing a load per iteration and the memory constraint
    that blocks instruction overlap.  Handles the distance-1 flow
    dependence of a statement onto itself. *)

open Vpc_il

type stats = {
  mutable loops_transformed : int;
  mutable loads_removed : int;
}

val new_stats : unit -> stats
val run : ?stats:stats -> Prog.t -> Func.t -> bool
