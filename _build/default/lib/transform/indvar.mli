(** Induction-variable substitution (paper §5.3), on normalized DO loops.
    Variables updated by loop-invariant amounts — possibly through the
    front end's ++/-- temp chains — become closed forms in the loop
    index, making the variation of memory references explicit for the
    vectorizer:

    {v temp_1 = a; a = temp_1 + 4; *temp_1 = *temp_2
       ==>  *(a_init + 4*k) = *(b_init + 4*k) v}

    Organized as the paper's heuristic: repeated passes with blocking
    bookkeeping; worst case n passes, one working pass in practice. *)

open Vpc_il

type stats = {
  mutable loops_processed : int;
  mutable ivs_found : int;
  mutable substitutions : int;
  mutable passes : int;
  mutable max_passes_one_loop : int;
  mutable blocked_events : int;  (** statements deferred to a later pass *)
}

val new_stats : unit -> stats
val run : ?stats:stats -> Prog.t -> Func.t -> bool
