(* In-loop forward substitution: collapse the front end's single-use
   temporaries inside DO-loop bodies so each memory store becomes one
   self-contained assignment the vectorizer can turn into a vector
   statement.  After inlining, §9's loops look like

       in_x = *(&b + 4*k);
       ret = in_x * 2.0 + 1.0;
       *(&a + 4*k) = ret;

   and must become  *(&a + 4*k) = *(&b + 4*k) * 2.0 + 1.0.

   A definition  t = rhs  at position p substitutes into its single use at
   position q > p when:
     - t is a compiler temp with no other defs or uses (and dead after
       the loop, which being a temp with a single in-loop use implies
       here: we additionally require it not be live out);
     - no variable rhs reads is redefined in (p, q);
     - if rhs loads memory, no statement in (p, q) writes memory — the
       use's own store happens after its RHS evaluation, so the store at
       q itself is fine. *)

open Vpc_il

type stats = { mutable substituted : int }

let new_stats () = { substituted = 0 }

let is_normalized (d : Stmt.do_loop) =
  Expr.is_zero d.lo
  && (match d.step.Expr.desc with Expr.Const_int 1 -> true | _ -> false)

let process_loop (func : Func.t) (live : Vpc_analysis.Liveness.t) stats
    (loop_stmt : Stmt.t) (d : Stmt.do_loop) : Stmt.do_loop =
  let top = Array.of_list d.body in
  let n = Array.length top in
  (* plain assign bodies only *)
  let plain =
    Array.for_all
      (fun (s : Stmt.t) ->
        match s.Stmt.desc with Stmt.Assign _ | Stmt.Nop -> true | _ -> false)
      top
  in
  if not plain then d
  else begin
    (* def positions and use positions per var *)
    let defs = Hashtbl.create 16 and uses = Hashtbl.create 16 in
    let addp tbl v p =
      Hashtbl.replace tbl v (p :: Option.value (Hashtbl.find_opt tbl v) ~default:[])
    in
    Array.iteri
      (fun p (s : Stmt.t) ->
        (match s.Stmt.desc with
        | Stmt.Assign (Stmt.Lvar v, _) -> addp defs v p
        | _ -> ());
        List.iter (fun v -> addp uses v p) (Stmt.shallow_uses s))
      top;
    let writes_mem p =
      match top.(p).Stmt.desc with
      | Stmt.Assign (Stmt.Lmem _, _) -> true
      | _ -> false
    in
    let killed = Hashtbl.create 8 in
    for p = 0 to n - 1 do
      match top.(p).Stmt.desc with
      | Stmt.Assign (Stmt.Lvar t, rhs) -> (
          let tvar = Func.find_var func t in
          let is_candidate =
            match tvar with
            | Some v ->
                v.Var.is_temp && (not v.volatile)
                && Hashtbl.find_opt defs t = Some [ p ]
                && (not
                      (Vpc_analysis.Liveness.live_out_of live
                         ~stmt_id:loop_stmt.Stmt.id ~var:t))
            | None -> false
          in
          let unique_use_positions =
            match Hashtbl.find_opt uses t with
            | Some l -> List.sort_uniq compare l
            | None -> []
          in
          match unique_use_positions with
          | [ q ] when is_candidate && q > p ->
              let rhs_reads = Expr.read_vars rhs in
              let reads_mem = Expr.contains_load rhs in
              let safe = ref true in
              for r = p + 1 to q - 1 do
                (match top.(r).Stmt.desc with
                | Stmt.Assign (Stmt.Lvar w, _) when List.mem w rhs_reads ->
                    safe := false
                | _ -> ());
                if reads_mem && writes_mem r then safe := false
              done;
              (* the consumer must not redefine an rhs var before... the
                 whole statement evaluates its RHS first, so same-stmt
                 redefinition is fine *)
              if !safe then begin
                top.(q) <-
                  Stmt.map_exprs_shallow
                    (Expr.subst_var t rhs)
                    top.(q);
                Hashtbl.replace killed p ();
                stats.substituted <- stats.substituted + 1;
                (* t's rhs vars are now read at q: update use positions so
                   later candidates see the move *)
                List.iter (fun v -> addp uses v q) rhs_reads
              end
          | _ -> ())
      | _ -> ()
    done;
    let body =
      List.filteri (fun p _ -> not (Hashtbl.mem killed p)) (Array.to_list top)
    in
    { d with body }
  end

let run ?(stats = new_stats ()) (prog : Prog.t) (func : Func.t) =
  ignore prog;
  let live = Vpc_analysis.Liveness.build func in
  let before = stats.substituted in
  let rec walk stmts = List.map walk_stmt stmts
  and walk_stmt (s : Stmt.t) : Stmt.t =
    match s.Stmt.desc with
    | Stmt.Do_loop d when is_normalized d ->
        let d = { d with body = walk d.body } in
        let s = { s with Stmt.desc = Stmt.Do_loop d } in
        let d' = process_loop func live stats s d in
        { s with Stmt.desc = Stmt.Do_loop d' }
    | Stmt.Do_loop d ->
        { s with desc = Stmt.Do_loop { d with body = walk d.body } }
    | Stmt.If (c, t, e) -> { s with desc = Stmt.If (c, walk t, walk e) }
    | Stmt.While (li, c, b) -> { s with desc = Stmt.While (li, c, walk b) }
    | _ -> s
  in
  func.Func.body <- walk func.Func.body;
  stats.substituted > before
