(** Parallelization of pointer-chasing while loops (paper §10): the body
    splits into a serialized prefix — the statements computing the
    loop-carried scalar state (the pointer advance, counters, the
    condition's inputs) — and a parallel rest (the memory work), which
    the Titan spreads over processors.  Applied only to loops carrying
    the independence pragma, which supplies the paper's "assumption that
    each motion down a pointer goes to independent storage". *)

open Vpc_il

type stats = {
  mutable loops_transformed : int;
  mutable rejected_shape : int;
  mutable rejected_dependence : int;
}

val new_stats : unit -> stats
val run : ?stats:stats -> Prog.t -> Func.t -> bool
