(** In-loop forward substitution: collapse the front end's single-consumer
    temporaries inside DO-loop bodies so each store becomes one
    self-contained assignment the vectorizer can handle.  A definition
    substitutes into its consumer when nothing it reads is redefined in
    between and, if it loads memory, nothing in between writes memory. *)

open Vpc_il

type stats = { mutable substituted : int }

val new_stats : unit -> stats
val run : ?stats:stats -> Prog.t -> Func.t -> bool
