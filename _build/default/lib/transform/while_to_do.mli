(** While→DO loop conversion (paper §5.2).  "Since C for loops are
    converted to while loops by the front end, this transformation is
    essential to success."

    A while loop converts when its condition tests a single integer
    variable against an invariant bound (or [while (i)] counting down),
    the variable receives exactly one net constant update per iteration —
    possibly through the front end's temp chain — and no branch enters or
    leaves the body.  Converted loops are emitted {e normalized}
    ([do dummy = 0, trip-1, 1], the §9 form) with the trip count bound to
    a preheader temporary. *)

open Vpc_il

type stats = {
  mutable converted : int;
  mutable rejected_branch_in : int;
  mutable rejected_branch_out : int;
  mutable rejected_no_induction : int;
  mutable rejected_condition : int;
  mutable rejected_volatile : int;
}

val new_stats : unit -> stats

(** Convert every eligible while loop; [true] if any converted. *)
val run : ?stats:stats -> Prog.t -> Func.t -> bool
