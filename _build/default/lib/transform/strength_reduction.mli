(** Dependence-driven strength reduction (paper §6), for loops the
    vectorizer left scalar: subscript multiplies become incremented
    pointers, references with a common base and stride share one pointer
    (the CSE of §6), and invariant compound subexpressions are hoisted.
    "Classic vectorizing transformations such as induction variable
    substitution deoptimize programs that do not vectorize" — this is the
    undo. *)

open Vpc_il

type stats = {
  mutable loops_reduced : int;
  mutable multiplies_removed : int;
  mutable invariants_hoisted : int;
  mutable pointers_shared : int;
}

val new_stats : unit -> stats
val run : ?stats:stats -> Prog.t -> Func.t -> bool
