(* One-call front end: C source text to IL program. *)

let compile ?file src : Vpc_il.Prog.t =
  let tu = Parser.parse ?file src in
  let sema = Sema.check_translation_unit tu in
  Lower.program sema
