(** One-call front end: C source text to an IL program (parse, semantic
    analysis, §4 lowering).  Raises [Vpc_support.Diag.Error_exn] on any
    user-facing error. *)

val compile : ?file:string -> string -> Vpc_il.Prog.t
