lib/cfront/lexer.ml: Buffer Diag Hashtbl List Loc String Token Vpc_support
