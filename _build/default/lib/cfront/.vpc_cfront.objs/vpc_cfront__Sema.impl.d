lib/cfront/sema.ml: Ast Diag Func Hashtbl List Option Printf Prog Stack String Ty Var Vpc_il Vpc_support
