lib/cfront/token.ml: Printf String
