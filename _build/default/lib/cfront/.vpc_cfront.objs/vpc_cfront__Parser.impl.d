lib/cfront/parser.ml: Array Ast Buffer Char Diag Hashtbl Lexer List Loc Option Printf String Token Ty Vpc_il Vpc_support
