lib/cfront/frontend.ml: Lower Parser Sema Vpc_il
