lib/cfront/lower.ml: Ast Builder Char Diag Expr Func Hashtbl List Option Printf Prog Sema Stmt String Ty Var Vpc_il Vpc_support
