lib/cfront/ast.ml: Diag Loc Ty Var Vpc_il Vpc_support
