lib/cfront/frontend.mli: Vpc_il
