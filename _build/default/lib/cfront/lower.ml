(* Lowering of the annotated AST into the IL (paper §4).

   Every C expression becomes a pair (statement list, pure expression).
   All side effects — embedded assignments, ++/--, function calls — become
   explicit assignment/call statements on compiler temporaries, reproducing
   the paper's forms exactly: [*a++ = *b++] turns into the temp_1/temp_2
   sequence of §5.3, and [while]/[for] conditions with side effects get
   their statement lists duplicated before the loop and at the bottom of
   the body.  Pointer arithmetic is scaled to bytes here. *)

open Vpc_support
open Vpc_il

type loop_labels = {
  break_lbl : string;
  continue_lbl : string option;  (* switch has break but no continue *)
  mutable break_used : bool;
  mutable continue_used : bool;
}

type ctx = {
  b : Builder.ctx;
  structs : Ty.struct_env;
  fsigs : (string, Sema.fsig) Hashtbl.t;
  mutable loops : loop_labels list;
  string_pool : (string, Var.t) Hashtbl.t;
  ret_ty : Ty.t;
}

let error loc fmt = Diag.error ~loc fmt

let sizeof ctx ty = Ty.sizeof ctx.structs ty

(* Pointer type for byte-address arithmetic: arrays decay all the way to
   their innermost element so loads through bases stay scalar-typed. *)
let rec scalar_ptr ty =
  match ty with Ty.Array (elt, _) -> scalar_ptr elt | t -> Ty.Ptr t

(* ----------------------------------------------------------------- *)
(* Small helpers                                                     *)
(* ----------------------------------------------------------------- *)

let ast_binop_to_il : Ast.binop -> Expr.binop = function
  | Ast.B_add -> Expr.Add
  | Ast.B_sub -> Expr.Sub
  | Ast.B_mul -> Expr.Mul
  | Ast.B_div -> Expr.Div
  | Ast.B_rem -> Expr.Rem
  | Ast.B_shl -> Expr.Shl
  | Ast.B_shr -> Expr.Shr
  | Ast.B_and -> Expr.Band
  | Ast.B_or -> Expr.Bor
  | Ast.B_xor -> Expr.Bxor
  | Ast.B_eq -> Expr.Eq
  | Ast.B_ne -> Expr.Ne
  | Ast.B_lt -> Expr.Lt
  | Ast.B_le -> Expr.Le
  | Ast.B_gt -> Expr.Gt
  | Ast.B_ge -> Expr.Ge

let is_comparison_ast = function
  | Ast.B_eq | Ast.B_ne | Ast.B_lt | Ast.B_le | Ast.B_gt | Ast.B_ge -> true
  | _ -> false

(* The global variable holding a string literal, shared per content. *)
let string_global ctx s =
  match Hashtbl.find_opt ctx.string_pool s with
  | Some v -> v
  | None ->
      let id = Prog.fresh_var_id ctx.b.Builder.prog in
      let v =
        Var.make ~id
          ~name:(Printf.sprintf "__str_%d" id)
          ~ty:(Ty.Array (Ty.Char, Some (String.length s + 1)))
          ~storage:Var.Static ~is_temp:true ()
      in
      Prog.add_global ctx.b.Builder.prog ~ginit:(Prog.Init_string s) v;
      Hashtbl.replace ctx.string_pool s v;
      v

(* Cast helper that also promotes int constants to float constants so the
   IL stays readable (1 becomes 1.0, as in the paper's daxpy listing). *)
let cast_to ty (e : Expr.t) =
  match ty, e.desc with
  | (Ty.Float | Ty.Double), Expr.Const_int n ->
      Expr.float_const ~ty (float_of_int n)
  | (Ty.Float | Ty.Double), Expr.Const_float f -> Expr.float_const ~ty f
  | Ty.Int, Expr.Const_int _ -> e
  | _ -> Expr.cast ty e

(* ----------------------------------------------------------------- *)
(* Lvalue access paths                                               *)
(* ----------------------------------------------------------------- *)

(* An access to an lvalue, evaluated once: [read] is a pure expression for
   the current value; [write e] is the statement storing [e]. *)
type access = {
  read : Expr.t;
  write : Expr.t -> Stmt.t;
  acc_ty : Ty.t;
}

let rec lower_rval ctx (e : Ast.expr) : Stmt.t list * Expr.t =
  let loc = e.Ast.eloc in
  let ty = Ast.ty_exn e in
  match e.Ast.desc with
  | Ast.E_int n -> ([], Expr.int_const n)
  | Ast.E_char c -> ([], Expr.int_const (Char.code c))
  | Ast.E_float (f, _) -> ([], Expr.float_const ~ty f)
  | Ast.E_string s ->
      let v = string_global ctx s in
      ([], Expr.addr_of v)
  | Ast.E_ident _ -> (
      match e.Ast.var with
      | Some v ->
          if Var.is_memory_object v then ([], Expr.addr_of v)
          else ([], Expr.var v)
      | None -> Diag.internal "unresolved identifier")
  | Ast.E_call _ -> lower_call ctx ~need_value:true e
  | Ast.E_index _ | Ast.E_member _ | Ast.E_arrow _
  | Ast.E_unop (Ast.U_deref, _) ->
      let sl, addr = lower_addr ctx e in
      (match ty with
      | Ty.Ptr _ when is_aggregate_lvalue ctx e ->
          (* an array element that is itself an array: the value is its
             address, already in [addr] *)
          (sl, { addr with ty })
      | _ -> (sl, Expr.load addr))
  | Ast.E_unop (Ast.U_addr, arg) ->
      let sl, addr = lower_addr ctx arg in
      (sl, { addr with ty })
  | Ast.E_unop (Ast.U_plus, arg) ->
      let sl, a = lower_rval ctx arg in
      (sl, cast_to ty a)
  | Ast.E_unop (Ast.U_neg, arg) ->
      let sl, a = lower_rval ctx arg in
      (sl, Expr.unop Expr.Neg (cast_to ty a) ty)
  | Ast.E_unop (Ast.U_lognot, arg) ->
      let sl, a = lower_rval ctx arg in
      (sl, Expr.unop Expr.Lognot a Ty.Int)
  | Ast.E_unop (Ast.U_bitnot, arg) ->
      let sl, a = lower_rval ctx arg in
      (sl, Expr.unop Expr.Bitnot (cast_to Ty.Int a) Ty.Int)
  | Ast.E_incdec { incr; prefix; arg } ->
      let sl, access = lower_access ctx arg in
      let delta = incdec_delta ctx access.acc_ty in
      let op = if incr then Expr.Add else Expr.Sub in
      if prefix then begin
        (* temp = v + 1; v = temp *)
        let bind_stmt, tv =
          Builder.bind ctx.b ~loc
            (Expr.binop op access.read delta access.acc_ty)
        in
        (sl @ [ bind_stmt; access.write tv ], tv)
      end
      else begin
        (* temp = v; v = temp + 1  (the paper's §5.3 shape) *)
        let bind_stmt, tv = Builder.bind ctx.b ~loc access.read in
        (sl @ [ bind_stmt; access.write (Expr.binop op tv delta access.acc_ty) ],
         tv)
      end
  | Ast.E_binop (op, a, b) -> lower_binop ctx ty op a b
  | Ast.E_logical (lop, a, b) ->
      (* t = 0/1 via branches; && and || are control flow in the IL (§4) *)
      let t = Builder.fresh_temp ctx.b Ty.Int in
      let sl_a, ea = lower_rval ctx a in
      let sl_b, eb = lower_rval ctx b in
      let bool_of e = Expr.unop Expr.Lognot (Expr.unop Expr.Lognot e Ty.Int) Ty.Int in
      let set_from_b = sl_b @ [ Builder.assign ctx.b ~loc t (bool_of eb) ] in
      let stmts =
        match lop with
        | Ast.L_and ->
            sl_a
            @ [
                Builder.if_ ctx.b ~loc ea set_from_b
                  [ Builder.assign ctx.b ~loc t (Expr.int_const 0) ];
              ]
        | Ast.L_or ->
            sl_a
            @ [
                Builder.if_ ctx.b ~loc ea
                  [ Builder.assign ctx.b ~loc t (Expr.int_const 1) ]
                  set_from_b;
              ]
      in
      (stmts, Expr.var t)
  | Ast.E_cond (c, x, y) ->
      let t = Builder.fresh_temp ctx.b ty in
      let sl_c, ec = lower_rval ctx c in
      let sl_x, ex = lower_rval ctx x in
      let sl_y, ey = lower_rval ctx y in
      let then_ = sl_x @ [ Builder.assign ctx.b ~loc t (cast_to ty ex) ] in
      let else_ = sl_y @ [ Builder.assign ctx.b ~loc t (cast_to ty ey) ] in
      (sl_c @ [ Builder.if_ ctx.b ~loc ec then_ else_ ], Expr.var t)
  | Ast.E_assign (lhs, rhs) ->
      (* (SL1, E1) = (SL2, E2) => (SL1; SL2; t = E2; E1 = t, t): the temp
         keeps volatile semantics right (v is written once, never read) *)
      let sl_l, access = lower_access ctx lhs in
      let sl_r, er = lower_rval ctx rhs in
      let bind_stmt, tv = Builder.bind ctx.b ~loc (cast_to access.acc_ty er) in
      (sl_l @ sl_r @ [ bind_stmt; access.write tv ], tv)
  | Ast.E_opassign (op, lhs, rhs) ->
      let sl_l, access = lower_access ctx lhs in
      let sl_r, er = lower_rval ctx rhs in
      let rhs_e = opassign_rhs ctx access op er (Ast.ty_exn rhs) in
      let bind_stmt, tv = Builder.bind ctx.b ~loc rhs_e in
      (sl_l @ sl_r @ [ bind_stmt; access.write tv ], tv)
  | Ast.E_comma (a, b) ->
      let sl_a, _ = lower_rval ctx a in
      let sl_b, eb = lower_rval ctx b in
      (sl_a @ sl_b, eb)
  | Ast.E_cast (_, arg) ->
      let sl, a = lower_rval ctx arg in
      if ty = Ty.Void then (sl, Expr.int_const 0) else (sl, cast_to ty a)
  | Ast.E_sizeof_type _ | Ast.E_sizeof_expr _ -> (
      match e.Ast.const_size with
      | Some n -> ([], Expr.int_const n)
      | None -> error loc "sizeof not resolved")

(* Whether this lvalue expression denotes an aggregate (so its "value" is
   its address). *)
and is_aggregate_lvalue ctx (e : Ast.expr) =
  match e.Ast.desc, e.Ast.ty with
  | (Ast.E_index _ | Ast.E_member _ | Ast.E_arrow _ | Ast.E_unop (Ast.U_deref, _)),
    Some _ -> (
      (* Sema annotates an aggregate element with its decayed pointer type;
         we detect it by re-deriving the unconverted element type. *)
      match element_ty_of_lvalue ctx e with
      | Some (Ty.Array _ | Ty.Struct _) -> true
      | _ -> false)
  | _ -> false

(* The unconverted element type an lvalue denotes, derived structurally
   from the annotated operand types. *)
and element_ty_of_lvalue ctx (e : Ast.expr) : Ty.t option =
  let field_ty tag field =
    match Hashtbl.find_opt ctx.structs tag with
    | Some (def : Ty.struct_def) -> List.assoc_opt field def.fields
    | None -> None
  in
  match e.Ast.desc with
  | Ast.E_index (base, _) -> (
      match base.Ast.ty with Some (Ty.Ptr elt) -> Some elt | _ -> None)
  | Ast.E_unop (Ast.U_deref, p) -> (
      match p.Ast.ty with Some (Ty.Ptr elt) -> Some elt | _ -> None)
  | Ast.E_member (base, field) -> (
      match base.Ast.ty with
      | Some (Ty.Struct tag) | Some (Ty.Ptr (Ty.Struct tag)) ->
          field_ty tag field
      | _ -> None)
  | Ast.E_arrow (base, field) -> (
      match base.Ast.ty with
      | Some (Ty.Ptr (Ty.Struct tag)) -> field_ty tag field
      | _ -> None)
  | _ -> None

(* Address of an lvalue: returns a pure pointer expression, scaled in
   bytes. *)
and lower_addr ctx (e : Ast.expr) : Stmt.t list * Expr.t =
  let loc = e.Ast.eloc in
  match e.Ast.desc with
  | Ast.E_ident _ -> (
      match e.Ast.var with
      | Some v -> ([], Expr.addr_of v)
      | None -> Diag.internal "unresolved identifier")
  | Ast.E_string s -> ([], Expr.addr_of (string_global ctx s))
  | Ast.E_index (base, idx) -> (
      let sl_b, eb = lower_rval ctx base in
      let sl_i, ei = lower_rval ctx idx in
      match base.Ast.ty with
      | Some (Ty.Ptr elt) ->
          let scale = sizeof ctx elt in
          let offset =
            match ei.desc with
            | Expr.Const_int n -> Expr.int_const (n * scale)
            | _ ->
                Expr.binop Expr.Mul (Expr.int_const scale)
                  (cast_to Ty.Int ei) Ty.Int
          in
          let ptr_ty = scalar_ptr elt in
          (sl_b @ sl_i, Expr.binop Expr.Add { eb with ty = ptr_ty } offset ptr_ty)
      | _ -> error loc "subscript of non-pointer")
  | Ast.E_unop (Ast.U_deref, p) -> lower_rval ctx p
  | Ast.E_member (base, field) -> (
      let sl, eb = lower_addr ctx base in
      match base.Ast.ty with
      | Some (Ty.Struct tag) | Some (Ty.Ptr (Ty.Struct tag)) ->
          let off, fty = Ty.field_offset ctx.structs tag field in
          let ptr_ty = scalar_ptr fty in
          let addr =
            if off = 0 then { eb with ty = ptr_ty }
            else Expr.binop Expr.Add { eb with ty = ptr_ty } (Expr.int_const off) ptr_ty
          in
          (sl, addr)
      | _ -> error loc "member access on non-struct")
  | Ast.E_arrow (base, field) -> (
      let sl, eb = lower_rval ctx base in
      match base.Ast.ty with
      | Some (Ty.Ptr (Ty.Struct tag)) ->
          let off, fty = Ty.field_offset ctx.structs tag field in
          let ptr_ty = scalar_ptr fty in
          let addr =
            if off = 0 then { eb with ty = ptr_ty }
            else Expr.binop Expr.Add { eb with ty = ptr_ty } (Expr.int_const off) ptr_ty
          in
          (sl, addr)
      | _ -> error loc "-> on non-pointer-to-struct")
  | _ -> error loc "expression is not an lvalue"

(* Evaluate an lvalue once and produce an access path. *)
and lower_access ctx (e : Ast.expr) : Stmt.t list * access =
  let acc_ty =
    match e.Ast.desc, e.Ast.var with
    | Ast.E_ident _, Some v -> v.ty
    | _ -> (
        match element_ty_of_lvalue ctx e with
        | Some t -> t
        | None -> Ast.ty_exn e)
  in
  match e.Ast.desc, e.Ast.var with
  | Ast.E_ident _, Some v ->
      ( [],
        {
          read = Expr.var v;
          write = (fun value -> Builder.assign ctx.b v value);
          acc_ty;
        } )
  | _ ->
      let sl, addr = lower_addr ctx e in
      (* if the address is not a trivial expression, hold it in a temp so
         it is evaluated exactly once *)
      let sl, addr =
        match addr.desc with
        | Expr.Var _ | Expr.Addr_of _ | Expr.Const_int _ -> (sl, addr)
        | _ ->
            let bind_stmt, tv = Builder.bind ctx.b ~name:"addr" addr in
            (sl @ [ bind_stmt ], tv)
      in
      ( sl,
        {
          read = Expr.load addr;
          write =
            (fun value -> Builder.store ctx.b addr (cast_to acc_ty value));
          acc_ty;
        } )

and incdec_delta ctx ty : Expr.t =
  match ty with
  | Ty.Ptr elt -> Expr.int_const (sizeof ctx elt)
  | Ty.Float | Ty.Double -> Expr.float_const ~ty 1.0
  | _ -> Expr.int_const 1

and opassign_rhs ctx access op er rhs_ty : Expr.t =
  let op_il = ast_binop_to_il op in
  match access.acc_ty, op with
  | Ty.Ptr elt, (Ast.B_add | Ast.B_sub) ->
      let scale = sizeof ctx elt in
      let scaled =
        match er.Expr.desc with
        | Expr.Const_int n -> Expr.int_const (n * scale)
        | _ -> Expr.binop Expr.Mul (Expr.int_const scale) (cast_to Ty.Int er) Ty.Int
      in
      Expr.binop op_il access.read scaled access.acc_ty
  | _ ->
      ignore rhs_ty;
      let common = Ty.common_arith access.acc_ty rhs_ty in
      cast_to access.acc_ty
        (Expr.binop op_il (cast_to common access.read) (cast_to common er) common)

and lower_binop ctx ty op a b : Stmt.t list * Expr.t =
  let sl_a, ea = lower_rval ctx a in
  let sl_b, eb = lower_rval ctx b in
  let ta = Ast.ty_exn a and tb = Ast.ty_exn b in
  let sl = sl_a @ sl_b in
  let op_il = ast_binop_to_il op in
  let scale_by n e =
    match e.Expr.desc with
    | Expr.Const_int k -> Expr.int_const (k * n)
    | _ -> Expr.binop Expr.Mul (Expr.int_const n) (cast_to Ty.Int e) Ty.Int
  in
  match op, ta, tb with
  | Ast.B_add, Ty.Ptr elt, _ when Ty.is_integer tb ->
      (sl, Expr.binop Expr.Add ea (scale_by (sizeof ctx elt) eb) ta)
  | Ast.B_add, _, Ty.Ptr elt when Ty.is_integer ta ->
      (sl, Expr.binop Expr.Add eb (scale_by (sizeof ctx elt) ea) tb)
  | Ast.B_sub, Ty.Ptr elt, _ when Ty.is_integer tb ->
      (sl, Expr.binop Expr.Sub ea (scale_by (sizeof ctx elt) eb) ta)
  | Ast.B_sub, Ty.Ptr elt, Ty.Ptr _ ->
      let diff = Expr.binop Expr.Sub (cast_to Ty.Int ea) (cast_to Ty.Int eb) Ty.Int in
      (sl, Expr.binop Expr.Div diff (Expr.int_const (sizeof ctx elt)) Ty.Int)
  | _ when is_comparison_ast op ->
      let ea, eb =
        if Ty.is_arith ta && Ty.is_arith tb then
          let common = Ty.common_arith ta tb in
          (cast_to common ea, cast_to common eb)
        else (ea, eb)
      in
      (sl, Expr.binop op_il ea eb Ty.Int)
  | _ ->
      let common = ty in
      (sl, Expr.binop op_il (cast_to common ea) (cast_to common eb) common)

(* Calls: arguments are cast to the known formal types; varargs get the
   default promotions (float -> double). *)
and lower_call ctx ~need_value (e : Ast.expr) : Stmt.t list * Expr.t =
  let loc = e.Ast.eloc in
  match e.Ast.desc with
  | Ast.E_call ({ desc = Ast.E_ident fname; _ }, args) ->
      let fsig = Hashtbl.find_opt ctx.fsigs fname in
      let formals = match fsig with Some { args; _ } -> args | None -> None in
      let lowered = List.map (lower_rval ctx) args in
      let sl = List.concat_map fst lowered in
      let exprs = List.map snd lowered in
      let exprs =
        match formals with
        | Some formal_tys when List.length formal_tys = List.length exprs ->
            List.map2 cast_to formal_tys exprs
        | _ ->
            (* default argument promotions *)
            List.map
              (fun (arg : Expr.t) ->
                match arg.ty with
                | Ty.Float -> cast_to Ty.Double arg
                | Ty.Char -> cast_to Ty.Int arg
                | _ -> arg)
              exprs
      in
      let ret_ty = match fsig with Some { ret; _ } -> ret | None -> Ty.Int in
      if need_value && ret_ty <> Ty.Void then begin
        let t = Builder.fresh_temp ctx.b ret_ty in
        let call =
          Builder.stmt ctx.b ~loc
            (Stmt.Call (Some (Stmt.Lvar t.id), Stmt.Direct fname, exprs))
        in
        (sl @ [ call ], Expr.var t)
      end
      else begin
        let call =
          Builder.stmt ctx.b ~loc (Stmt.Call (None, Stmt.Direct fname, exprs))
        in
        (sl @ [ call ], Expr.int_const 0)
      end
  | _ -> error loc "only direct calls are supported"

(* Evaluate an expression for its side effects only, avoiding the result
   temporary where the paper's front end would (plain assignment). *)
let lower_for_effect ctx (e : Ast.expr) : Stmt.t list =
  match e.Ast.desc with
  | Ast.E_assign (lhs, rhs) ->
      let sl_l, access = lower_access ctx lhs in
      let sl_r, er = lower_rval ctx rhs in
      sl_l @ sl_r @ [ access.write (cast_to access.acc_ty er) ]
  | Ast.E_opassign (op, lhs, rhs) ->
      let sl_l, access = lower_access ctx lhs in
      let sl_r, er = lower_rval ctx rhs in
      sl_l @ sl_r @ [ access.write (opassign_rhs ctx access op er (Ast.ty_exn rhs)) ]
  | Ast.E_call _ -> fst (lower_call ctx ~need_value:false e)
  | _ -> fst (lower_rval ctx e)

(* ----------------------------------------------------------------- *)
(* Statements                                                        *)
(* ----------------------------------------------------------------- *)

let user_label l = "u_" ^ l

let pragma_independent (pragmas : Ast.pragma list) =
  List.exists
    (function
      | [ "vpc"; "independent" ] | [ "vpc"; "safe" ] | [ "independent" ]
      | [ "ivdep" ] ->
          true
      | _ -> false)
    pragmas

let const_eval_int loc (e : Ast.expr) =
  let rec go (e : Ast.expr) =
    match e.Ast.desc with
    | Ast.E_int n -> n
    | Ast.E_char c -> Char.code c
    | Ast.E_unop (Ast.U_neg, a) -> -go a
    | _ -> error loc "case label is not an integer constant"
  in
  go e

let rec lower_stmt ctx (s : Ast.stmt) : Stmt.t list =
  let loc = s.Ast.sloc in
  match s.Ast.sdesc with
  | Ast.S_expr None -> []
  | Ast.S_expr (Some e) -> lower_for_effect ctx e
  | Ast.S_block items ->
      List.concat_map
        (function
          | Ast.Bi_decl d -> lower_decl ctx d
          | Ast.Bi_stmt s -> lower_stmt ctx s)
        items
  | Ast.S_if (c, then_, else_) ->
      let sl_c, ec = lower_rval ctx c in
      let then_il = lower_stmt ctx then_ in
      let else_il = match else_ with Some s -> lower_stmt ctx s | None -> [] in
      sl_c @ [ Builder.if_ ctx.b ~loc ec then_il else_il ]
  | Ast.S_while (pragmas, c, body) ->
      lower_loop ctx ~loc ~pragmas ~init:[] ~cond:(Some c) ~inc:[] body
  | Ast.S_for (pragmas, init, cond, inc, body) ->
      let init_sl =
        match init with Some e -> lower_for_effect ctx e | None -> []
      in
      let inc_sl = match inc with Some e -> lower_for_effect ctx e | None -> [] in
      lower_loop ctx ~loc ~pragmas ~init:init_sl ~cond ~inc:inc_sl body
  | Ast.S_do (body, c) ->
      (* Label Lstart; body; [continue:] SL_c; if (Ec) goto Lstart; [break:] *)
      let start = Func.fresh_label ctx.b.Builder.func "dostart" in
      let labels =
        {
          break_lbl = Func.fresh_label ctx.b.Builder.func "break";
          continue_lbl = Some (Func.fresh_label ctx.b.Builder.func "cont");
          break_used = false;
          continue_used = false;
        }
      in
      ctx.loops <- labels :: ctx.loops;
      let body_il = lower_stmt ctx body in
      ctx.loops <- List.tl ctx.loops;
      let sl_c, ec = lower_rval ctx c in
      let continue_label =
        if labels.continue_used then
          [ Builder.label ctx.b (Option.get labels.continue_lbl) ]
        else []
      in
      let break_label =
        if labels.break_used then [ Builder.label ctx.b labels.break_lbl ]
        else []
      in
      [ Builder.label ctx.b start ]
      @ body_il @ continue_label @ sl_c
      @ [
          Builder.if_ ctx.b ~loc ec [ Builder.goto ctx.b start ] [];
        ]
      @ break_label
  | Ast.S_return None -> [ Builder.return ctx.b ~loc None ]
  | Ast.S_return (Some e) ->
      let sl, ev = lower_rval ctx e in
      sl @ [ Builder.return ctx.b ~loc (Some (cast_to ctx.ret_ty ev)) ]
  | Ast.S_break -> (
      match ctx.loops with
      | labels :: _ ->
          labels.break_used <- true;
          [ Builder.goto ctx.b ~loc labels.break_lbl ]
      | [] -> error loc "break outside of loop or switch")
  | Ast.S_continue -> (
      let rec find = function
        | [] -> error loc "continue outside of loop"
        | { continue_lbl = Some l; _ } as labels :: _ ->
            labels.continue_used <- true;
            l
        | { continue_lbl = None; _ } :: rest -> find rest
      in
      match ctx.loops with
      | [] -> error loc "continue outside of loop"
      | loops -> [ Builder.goto ctx.b ~loc (find loops) ])
  | Ast.S_goto l -> [ Builder.goto ctx.b ~loc (user_label l) ]
  | Ast.S_label (l, inner) ->
      Builder.label ctx.b ~loc (user_label l) :: lower_stmt ctx inner
  | Ast.S_switch (e, body) -> lower_switch ctx ~loc e body
  | Ast.S_case (_, _) | Ast.S_default _ ->
      error loc "case/default outside of switch"

(* Shared loop lowering (§4): the condition's statement list is emitted
   before the loop and again at the bottom of the body.  [for] loops are
   while loops by construction — "the C front end represents for loops as
   while loops". *)
and lower_loop ctx ~loc ~pragmas ~init ~cond ~inc body : Stmt.t list =
  let labels =
    {
      break_lbl = Func.fresh_label ctx.b.Builder.func "break";
      continue_lbl = Some (Func.fresh_label ctx.b.Builder.func "cont");
      break_used = false;
      continue_used = false;
    }
  in
  ctx.loops <- labels :: ctx.loops;
  let body_il = lower_stmt ctx body in
  ctx.loops <- List.tl ctx.loops;
  let sl_c, ec =
    match cond with
    | Some c -> lower_rval ctx c
    | None -> ([], Expr.int_const 1)
  in
  let continue_label =
    if labels.continue_used then
      [ Builder.label ctx.b (Option.get labels.continue_lbl) ]
    else []
  in
  let break_label =
    if labels.break_used then [ Builder.label ctx.b labels.break_lbl ] else []
  in
  let info =
    { Stmt.no_info with Stmt.pragma_independent = pragma_independent pragmas }
  in
  let loop_body = body_il @ continue_label @ inc @ sl_c in
  init @ sl_c
  @ [ Builder.while_ ctx.b ~loc ~info ec loop_body ]
  @ break_label

and lower_switch ctx ~loc e body : Stmt.t list =
  let sl_e, ev = lower_rval ctx e in
  let bind_stmt, tv = Builder.bind ctx.b ~loc ~name:"switch" ev in
  (* Collect the case/default statements (recursively, in order). *)
  let cases : (int option * string) list ref = ref [] in
  let rec collect (s : Ast.stmt) =
    match s.Ast.sdesc with
    | Ast.S_case (ce, inner) ->
        let n = const_eval_int s.Ast.sloc ce in
        cases := (Some n, Func.fresh_label ctx.b.Builder.func "case") :: !cases;
        collect inner
    | Ast.S_default inner ->
        cases := (None, Func.fresh_label ctx.b.Builder.func "default") :: !cases;
        collect inner
    | Ast.S_block items ->
        List.iter (function Ast.Bi_stmt s -> collect s | Ast.Bi_decl _ -> ()) items
    | Ast.S_label (_, inner) -> collect inner
    | Ast.S_if (_, a, b) ->
        collect a;
        Option.iter collect b
    | _ -> ()
  in
  collect body;
  let cases_in_order = List.rev !cases in
  let labels =
    {
      break_lbl = Func.fresh_label ctx.b.Builder.func "swbreak";
      continue_lbl = None;
      break_used = false;
      continue_used = false;
    }
  in
  ctx.loops <- labels :: ctx.loops;
  (* Lower the body, replacing case/default markers by labels.  We rely on
     a mutable queue matched in the same traversal order as [collect]. *)
  let pending = ref cases_in_order in
  let take () =
    match !pending with
    | c :: rest ->
        pending := rest;
        c
    | [] -> Diag.internal "switch case bookkeeping"
  in
  let rec lower_case_stmt (s : Ast.stmt) : Stmt.t list =
    match s.Ast.sdesc with
    | Ast.S_case (_, inner) ->
        let _, lbl = take () in
        Builder.label ctx.b lbl :: lower_case_stmt inner
    | Ast.S_default inner ->
        let _, lbl = take () in
        Builder.label ctx.b lbl :: lower_case_stmt inner
    | Ast.S_block items ->
        List.concat_map
          (function
            | Ast.Bi_stmt s -> lower_case_stmt s
            | Ast.Bi_decl d -> lower_decl ctx d)
          items
    | Ast.S_label (l, inner) ->
        Builder.label ctx.b (user_label l) :: lower_case_stmt inner
    | Ast.S_if (c, a, b) ->
        let sl_c, ec = lower_rval ctx c in
        let a_il = lower_case_stmt a in
        let b_il = match b with Some s -> lower_case_stmt s | None -> [] in
        sl_c @ [ Builder.if_ ctx.b ec a_il b_il ]
    | _ -> lower_stmt ctx s
  in
  let body_il = lower_case_stmt body in
  ctx.loops <- List.tl ctx.loops;
  let dispatch =
    List.filter_map
      (fun (value, lbl) ->
        match value with
        | Some n ->
            Some
              (Builder.if_ ctx.b
                 (Expr.binop Expr.Eq tv (Expr.int_const n) Ty.Int)
                 [ Builder.goto ctx.b lbl ]
                 [])
        | None -> None)
      cases_in_order
  in
  let default_jump =
    match List.find_opt (fun (v, _) -> v = None) cases_in_order with
    | Some (_, lbl) -> [ Builder.goto ctx.b lbl ]
    | None ->
        labels.break_used <- true;
        [ Builder.goto ctx.b labels.break_lbl ]
  in
  let break_label =
    if labels.break_used then [ Builder.label ctx.b labels.break_lbl ] else []
  in
  sl_e @ [ bind_stmt ] @ dispatch @ default_jump @ body_il @ break_label

(* ----------------------------------------------------------------- *)
(* Declarations                                                      *)
(* ----------------------------------------------------------------- *)

and lower_decl ctx (d : Ast.decl) : Stmt.t list =
  let v =
    match d.Ast.d_var with
    | Some v -> v
    | None -> Diag.internal "declaration not resolved by Sema"
  in
  match d.d_init with
  | None -> []
  | Some init -> (
      match v.storage with
      | Var.Static | Var.Global | Var.Extern ->
          set_global_init ctx.b.Builder.prog ctx.structs d.d_loc v init;
          []
      | Var.Auto | Var.Param -> lower_local_init ctx d.d_loc v init)

and lower_local_init ctx loc (v : Var.t) (init : Ast.init) : Stmt.t list =
  match v.ty, init with
  | Ty.Array (elt, _), Ast.I_list items ->
      let base = Expr.addr_of v in
      let esize = sizeof ctx elt in
      List.concat
        (List.mapi
           (fun i item ->
             match item, elt with
             | Ast.I_expr e, _ ->
                 let sl, ev = lower_rval ctx e in
                 let addr =
                   if i = 0 then base
                   else Expr.binop Expr.Add base (Expr.int_const (i * esize))
                          (Ty.Ptr elt)
                 in
                 sl @ [ Builder.store ctx.b ~loc addr (cast_to elt ev) ]
             | Ast.I_list _, _ -> error loc "nested initializer lists on locals are not supported")
           items)
  | Ty.Array (Ty.Char, _), Ast.I_expr { desc = Ast.E_string s; _ } ->
      let base = Expr.addr_of v in
      List.concat
        (List.mapi
           (fun i c ->
             let addr =
               if i = 0 then base
               else Expr.binop Expr.Add base (Expr.int_const i) (Ty.Ptr Ty.Char)
             in
             [ Builder.store ctx.b ~loc addr (Expr.int_const (Char.code c)) ])
           (List.init (String.length s + 1) (fun i ->
                if i < String.length s then s.[i] else '\000')))
  | Ty.Struct tag, Ast.I_list items ->
      let def =
        match Hashtbl.find_opt ctx.structs tag with
        | Some d -> d
        | None -> error loc "undefined struct %s" tag
      in
      let base = Expr.addr_of v in
      List.concat
        (List.mapi
           (fun i item ->
             match item, List.nth_opt def.fields i with
             | Ast.I_expr e, Some (fname, fty) ->
                 let off, _ = Ty.field_offset ctx.structs tag fname in
                 let sl, ev = lower_rval ctx e in
                 let addr =
                   if off = 0 then { base with ty = Ty.Ptr fty }
                   else Expr.binop Expr.Add base (Expr.int_const off) (Ty.Ptr fty)
                 in
                 sl @ [ Builder.store ctx.b ~loc addr (cast_to fty ev) ]
             | Ast.I_list _, _ -> error loc "nested struct initializers are not supported"
             | _, None -> error loc "too many initializers")
           items)
  | _, Ast.I_expr e ->
      let sl, ev = lower_rval ctx e in
      sl @ [ Builder.assign ctx.b ~loc v ev ]
  | _, Ast.I_list _ -> error loc "brace initializer for scalar"

and set_global_init prog structs loc (v : Var.t) (init : Ast.init) =
  let rec const_expr (e : Ast.expr) : Expr.t =
    match e.Ast.desc with
    | Ast.E_int n -> Expr.int_const n
    | Ast.E_char c -> Expr.int_const (Char.code c)
    | Ast.E_float (f, is_double) ->
        Expr.float_const ~ty:(if is_double then Ty.Double else Ty.Float) f
    | Ast.E_unop (Ast.U_neg, a) -> (
        let inner = const_expr a in
        match inner.Expr.desc with
        | Expr.Const_int n -> Expr.int_const (-n)
        | Expr.Const_float f -> Expr.float_const ~ty:inner.Expr.ty (-.f)
        | _ -> error loc "global initializer is not constant")
    | Ast.E_cast (ty, a) -> Expr.cast (Ty.decay ty) (const_expr a)
    | _ -> error loc "global initializer is not constant"
  in
  ignore structs;
  let ginit =
    match init, v.ty with
    | Ast.I_expr { desc = Ast.E_string s; _ }, Ty.Array (Ty.Char, _) ->
        Prog.Init_string s
    | Ast.I_expr e, _ -> Prog.Init_scalar (const_expr e)
    | Ast.I_list items, _ ->
        Prog.Init_array
          (List.map
             (function
               | Ast.I_expr e -> const_expr e
               | Ast.I_list _ -> error loc "nested global initializers are not supported")
             items)
  in
  Prog.add_global prog ~ginit v

(* ----------------------------------------------------------------- *)
(* Entry point                                                       *)
(* ----------------------------------------------------------------- *)

let check_labels (func : Func.t) loc =
  let labels = Hashtbl.create 8 in
  Stmt.iter_list
    (fun s ->
      match s.Stmt.desc with
      | Stmt.Label l -> Hashtbl.replace labels l ()
      | _ -> ())
    func.Func.body;
  Stmt.iter_list
    (fun s ->
      match s.Stmt.desc with
      | Stmt.Goto l when not (Hashtbl.mem labels l) ->
          error loc "goto to undefined label %s in %s"
            (if String.length l > 2 then String.sub l 2 (String.length l - 2)
             else l)
            func.Func.name
      | _ -> ())
    func.Func.body

let lower_function (sema : Sema.result) string_pool (func : Func.t)
    (fd : Ast.fundef) =
  let ctx =
    {
      b = Builder.ctx sema.prog func;
      structs = sema.prog.Prog.structs;
      fsigs = sema.fsigs;
      loops = [];
      string_pool;
      ret_ty = fd.fd_ret;
    }
  in
  func.Func.body <- lower_stmt ctx fd.fd_body;
  check_labels func fd.fd_loc

let program (sema : Sema.result) : Prog.t =
  let string_pool = Hashtbl.create 8 in
  (* global initializers *)
  List.iter
    (fun (d : Ast.decl) ->
      match d.d_var, d.d_init with
      | Some v, Some init ->
          set_global_init sema.prog sema.prog.Prog.structs d.d_loc v init
      | _ -> ())
    sema.globals;
  List.iter
    (fun (func, fd) -> lower_function sema string_pool func fd)
    sema.fundefs;
  sema.prog
