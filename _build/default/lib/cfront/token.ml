(* Tokens of the C subset.  Pragmas survive lexing as tokens so the parser
   can attach them to the following loop (the paper's mechanism for
   asserting that a loop is safe to vectorize). *)

type t =
  | Int_lit of int
  | Float_lit of float * bool  (* value, is_double (no 'f' suffix) *)
  | Char_lit of char
  | String_lit of string
  | Ident of string
  (* keywords *)
  | Kw_void | Kw_char | Kw_int | Kw_float | Kw_double
  | Kw_long | Kw_short | Kw_unsigned | Kw_signed
  | Kw_struct | Kw_union | Kw_enum
  | Kw_if | Kw_else | Kw_while | Kw_do | Kw_for | Kw_switch | Kw_case
  | Kw_default | Kw_break | Kw_continue | Kw_return | Kw_goto
  | Kw_static | Kw_extern | Kw_register | Kw_auto | Kw_typedef
  | Kw_volatile | Kw_const | Kw_sizeof
  (* punctuation *)
  | Lparen | Rparen | Lbrace | Rbrace | Lbracket | Rbracket
  | Semi | Comma | Colon | Question | Dot | Arrow | Ellipsis
  (* operators *)
  | Plus | Minus | Star | Slash | Percent
  | Amp | Pipe | Caret | Tilde | Bang
  | Shl | Shr
  | Lt | Gt | Le | Ge | Eq_eq | Bang_eq
  | Amp_amp | Pipe_pipe
  | Assign
  | Plus_assign | Minus_assign | Star_assign | Slash_assign | Percent_assign
  | Amp_assign | Pipe_assign | Caret_assign | Shl_assign | Shr_assign
  | Plus_plus | Minus_minus
  | Pragma of string list  (* #pragma vpc <words> *)
  | Eof

let keyword_table =
  [
    ("void", Kw_void); ("char", Kw_char); ("int", Kw_int);
    ("float", Kw_float); ("double", Kw_double); ("long", Kw_long);
    ("short", Kw_short); ("unsigned", Kw_unsigned); ("signed", Kw_signed);
    ("struct", Kw_struct); ("union", Kw_union); ("enum", Kw_enum);
    ("if", Kw_if);
    ("else", Kw_else); ("while", Kw_while); ("do", Kw_do); ("for", Kw_for);
    ("switch", Kw_switch); ("case", Kw_case); ("default", Kw_default);
    ("break", Kw_break); ("continue", Kw_continue); ("return", Kw_return);
    ("goto", Kw_goto); ("static", Kw_static); ("extern", Kw_extern);
    ("register", Kw_register); ("auto", Kw_auto); ("typedef", Kw_typedef);
    ("volatile", Kw_volatile); ("const", Kw_const); ("sizeof", Kw_sizeof);
  ]

let to_string = function
  | Int_lit n -> string_of_int n
  | Float_lit (f, _) -> string_of_float f
  | Char_lit c -> Printf.sprintf "'%c'" c
  | String_lit s -> Printf.sprintf "%S" s
  | Ident s -> s
  | Kw_void -> "void" | Kw_char -> "char" | Kw_int -> "int"
  | Kw_float -> "float" | Kw_double -> "double" | Kw_long -> "long"
  | Kw_short -> "short" | Kw_unsigned -> "unsigned" | Kw_signed -> "signed"
  | Kw_struct -> "struct" | Kw_union -> "union" | Kw_enum -> "enum"
  | Kw_if -> "if"
  | Kw_else -> "else" | Kw_while -> "while" | Kw_do -> "do" | Kw_for -> "for"
  | Kw_switch -> "switch" | Kw_case -> "case" | Kw_default -> "default"
  | Kw_break -> "break" | Kw_continue -> "continue" | Kw_return -> "return"
  | Kw_goto -> "goto" | Kw_static -> "static" | Kw_extern -> "extern"
  | Kw_register -> "register" | Kw_auto -> "auto" | Kw_typedef -> "typedef"
  | Kw_volatile -> "volatile" | Kw_const -> "const" | Kw_sizeof -> "sizeof"
  | Lparen -> "(" | Rparen -> ")" | Lbrace -> "{" | Rbrace -> "}"
  | Lbracket -> "[" | Rbracket -> "]" | Semi -> ";" | Comma -> ","
  | Colon -> ":" | Question -> "?" | Dot -> "." | Arrow -> "->"
  | Ellipsis -> "..."
  | Plus -> "+" | Minus -> "-" | Star -> "*" | Slash -> "/" | Percent -> "%"
  | Amp -> "&" | Pipe -> "|" | Caret -> "^" | Tilde -> "~" | Bang -> "!"
  | Shl -> "<<" | Shr -> ">>"
  | Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">=" | Eq_eq -> "=="
  | Bang_eq -> "!="
  | Amp_amp -> "&&" | Pipe_pipe -> "||"
  | Assign -> "="
  | Plus_assign -> "+=" | Minus_assign -> "-=" | Star_assign -> "*="
  | Slash_assign -> "/=" | Percent_assign -> "%="
  | Amp_assign -> "&=" | Pipe_assign -> "|=" | Caret_assign -> "^="
  | Shl_assign -> "<<=" | Shr_assign -> ">>="
  | Plus_plus -> "++" | Minus_minus -> "--"
  | Pragma ws -> "#pragma " ^ String.concat " " ws
  | Eof -> "<eof>"
