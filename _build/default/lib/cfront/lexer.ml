(* Hand-written lexer for the C subset, with a miniature preprocessor:
   object-like [#define] substitution, [#pragma vpc ...] passed through as
   a token, and all other [#] lines skipped with a warning.  This is all
   the preprocessing the paper's workloads need. *)

open Vpc_support

type t = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of beginning of current line *)
  defines : (string, Token.t list) Hashtbl.t;
  mutable pending : (Token.t * Loc.t) list;  (* expansion queue *)
  mutable at_line_start : bool;
}

let create ?(file = "<input>") src =
  {
    src;
    file;
    pos = 0;
    line = 1;
    bol = 0;
    defines = Hashtbl.create 8;
    pending = [];
    at_line_start = true;
  }

let cur_loc t =
  let pos = { Loc.line = t.line; col = t.pos - t.bol + 1 } in
  Loc.make ~file:t.file ~start_pos:pos ~end_pos:pos

let peek t = if t.pos < String.length t.src then Some t.src.[t.pos] else None

let peek2 t =
  if t.pos + 1 < String.length t.src then Some t.src.[t.pos + 1] else None

let advance t =
  (match peek t with
  | Some '\n' ->
      t.line <- t.line + 1;
      t.bol <- t.pos + 1;
      t.at_line_start <- true
  | Some (' ' | '\t' | '\r') -> ()
  | Some _ -> t.at_line_start <- false
  | None -> ());
  t.pos <- t.pos + 1

let error t fmt = Diag.error ~loc:(cur_loc t) fmt

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_ws_and_comments t =
  match peek t with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance t;
      skip_ws_and_comments t
  | Some '/' when peek2 t = Some '*' ->
      advance t;
      advance t;
      let rec go () =
        match peek t with
        | None -> error t "unterminated comment"
        | Some '*' when peek2 t = Some '/' ->
            advance t;
            advance t
        | Some _ ->
            advance t;
            go ()
      in
      go ();
      skip_ws_and_comments t
  | Some '/' when peek2 t = Some '/' ->
      let rec go () =
        match peek t with
        | Some '\n' | None -> ()
        | Some _ ->
            advance t;
            go ()
      in
      go ();
      skip_ws_and_comments t
  | Some _ | None -> ()

let read_ident t =
  let start = t.pos in
  while (match peek t with Some c -> is_ident_char c | None -> false) do
    advance t
  done;
  String.sub t.src start (t.pos - start)

let read_number t =
  let start = t.pos in
  let is_hex = peek t = Some '0' && (peek2 t = Some 'x' || peek2 t = Some 'X') in
  if is_hex then begin
    advance t;
    advance t;
    while
      match peek t with
      | Some c ->
          is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
      | None -> false
    do
      advance t
    done;
    Token.Int_lit (int_of_string (String.sub t.src start (t.pos - start)))
  end
  else begin
    while (match peek t with Some c -> is_digit c | None -> false) do
      advance t
    done;
    let is_float = ref false in
    (if peek t = Some '.' then begin
       is_float := true;
       advance t;
       while (match peek t with Some c -> is_digit c | None -> false) do
         advance t
       done
     end);
    (match peek t with
    | Some ('e' | 'E') ->
        is_float := true;
        advance t;
        (match peek t with Some ('+' | '-') -> advance t | _ -> ());
        while (match peek t with Some c -> is_digit c | None -> false) do
          advance t
        done
    | _ -> ());
    let text = String.sub t.src start (t.pos - start) in
    if !is_float then begin
      let is_double =
        match peek t with
        | Some ('f' | 'F') ->
            advance t;
            false
        | _ -> true
      in
      Token.Float_lit (float_of_string text, is_double)
    end
    else begin
      (* swallow integer suffixes l/u *)
      while (match peek t with Some ('l' | 'L' | 'u' | 'U') -> true | _ -> false) do
        advance t
      done;
      Token.Int_lit (int_of_string text)
    end
  end

let read_escape t =
  match peek t with
  | Some 'n' -> advance t; '\n'
  | Some 't' -> advance t; '\t'
  | Some 'r' -> advance t; '\r'
  | Some '0' -> advance t; '\000'
  | Some '\\' -> advance t; '\\'
  | Some '\'' -> advance t; '\''
  | Some '"' -> advance t; '"'
  | Some c -> advance t; c
  | None -> error t "unterminated escape"

let read_string t =
  advance t;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek t with
    | None -> error t "unterminated string literal"
    | Some '"' -> advance t
    | Some '\\' ->
        advance t;
        Buffer.add_char buf (read_escape t);
        go ()
    | Some c ->
        advance t;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Token.String_lit (Buffer.contents buf)

let read_char_lit t =
  advance t;
  let c =
    match peek t with
    | Some '\\' ->
        advance t;
        read_escape t
    | Some c ->
        advance t;
        c
    | None -> error t "unterminated character literal"
  in
  (match peek t with
  | Some '\'' -> advance t
  | _ -> error t "unterminated character literal");
  Token.Char_lit c

(* Read raw tokens until end of the current line (for #define bodies). *)
let rec read_line_tokens t acc =
  skip_ws_same_line t;
  match peek t with
  | None | Some '\n' -> ()
  | Some _ ->
      let tok = raw_token t in
      acc := tok :: !acc;
      read_line_tokens t acc

(* Handle a # directive at start of line.  Returns a pragma token or None. *)
and directive t =
  advance t;
  (* '#' *)
  skip_ws_same_line t;
  let name = read_ident t in
  match name with
  | "define" ->
      skip_ws_same_line t;
      let macro = read_ident t in
      if peek t = Some '(' then
        error t "function-like macros are not supported (macro %s)" macro;
      let body = ref [] in
      read_line_tokens t body;
      Hashtbl.replace t.defines macro (List.rev !body);
      None
  | "pragma" ->
      let words = ref [] in
      let rec go () =
        skip_ws_same_line t;
        match peek t with
        | None | Some '\n' -> ()
        | Some _ ->
            words := read_ident_or_word t :: !words;
            go ()
      in
      go ();
      Some (Token.Pragma (List.rev !words))
  | other ->
      Diag.warn ~loc:(cur_loc t) "ignoring unsupported directive #%s" other;
      let junk = ref [] in
      read_line_tokens t junk;
      None

and skip_ws_same_line t =
  match peek t with
  | Some (' ' | '\t' | '\r') ->
      advance t;
      skip_ws_same_line t
  | Some '/' when peek2 t = Some '*' ->
      skip_ws_and_comments t
  | _ -> ()

and read_ident_or_word t =
  if (match peek t with Some c -> is_ident_char c | None -> false) then
    read_ident t
  else begin
    let start = t.pos in
    while
      match peek t with
      | Some (' ' | '\t' | '\r' | '\n') | None -> false
      | Some _ -> true
    do
      advance t
    done;
    String.sub t.src start (t.pos - start)
  end

(* One raw token (no macro expansion, no directive handling). *)
and raw_token t : Token.t =
  match peek t with
  | None -> Token.Eof
  | Some c when is_ident_start c -> (
      let word = read_ident t in
      match List.assoc_opt word Token.keyword_table with
      | Some kw -> kw
      | None -> Token.Ident word)
  | Some c when is_digit c -> read_number t
  | Some '.' when (match peek2 t with Some c -> is_digit c | None -> false) ->
      read_number t
  | Some '"' -> read_string t
  | Some '\'' -> read_char_lit t
  | Some c ->
      let two tok = advance t; advance t; tok in
      let one tok = advance t; tok in
      let open Token in
      (match c, peek2 t with
      | '.', Some '.'
        when t.pos + 2 < String.length t.src && t.src.[t.pos + 2] = '.' ->
          advance t; advance t; advance t;
          Ellipsis
      | '-', Some '>' -> two Arrow
      | '-', Some '-' -> two Minus_minus
      | '-', Some '=' -> two Minus_assign
      | '+', Some '+' -> two Plus_plus
      | '+', Some '=' -> two Plus_assign
      | '*', Some '=' -> two Star_assign
      | '/', Some '=' -> two Slash_assign
      | '%', Some '=' -> two Percent_assign
      | '&', Some '&' -> two Amp_amp
      | '&', Some '=' -> two Amp_assign
      | '|', Some '|' -> two Pipe_pipe
      | '|', Some '=' -> two Pipe_assign
      | '^', Some '=' -> two Caret_assign
      | '<', Some '<' ->
          advance t; advance t;
          if peek t = Some '=' then one Shl_assign else Shl
      | '>', Some '>' ->
          advance t; advance t;
          if peek t = Some '=' then one Shr_assign else Shr
      | '<', Some '=' -> two Le
      | '>', Some '=' -> two Ge
      | '=', Some '=' -> two Eq_eq
      | '!', Some '=' -> two Bang_eq
      | '(', _ -> one Lparen
      | ')', _ -> one Rparen
      | '{', _ -> one Lbrace
      | '}', _ -> one Rbrace
      | '[', _ -> one Lbracket
      | ']', _ -> one Rbracket
      | ';', _ -> one Semi
      | ',', _ -> one Comma
      | ':', _ -> one Colon
      | '?', _ -> one Question
      | '.', _ -> one Dot
      | '+', _ -> one Plus
      | '-', _ -> one Minus
      | '*', _ -> one Star
      | '/', _ -> one Slash
      | '%', _ -> one Percent
      | '&', _ -> one Amp
      | '|', _ -> one Pipe
      | '^', _ -> one Caret
      | '~', _ -> one Tilde
      | '!', _ -> one Bang
      | '<', _ -> one Lt
      | '>', _ -> one Gt
      | '=', _ -> one Assign
      | _ -> error t "unexpected character %c" c)

(* The public token stream: handles whitespace, directives, and #define
   expansion (non-recursive, which is enough for constants). *)
let rec next t : Token.t * Loc.t =
  match t.pending with
  | (tok, loc) :: rest ->
      t.pending <- rest;
      (tok, loc)
  | [] -> (
      skip_ws_and_comments t;
      let loc = cur_loc t in
      match peek t with
      | None -> (Token.Eof, loc)
      | Some '#' when t.at_line_start -> (
          match directive t with
          | Some pragma_tok -> (pragma_tok, loc)
          | None -> next t)
      | Some _ -> (
          let tok = raw_token t in
          match tok with
          | Token.Ident name when Hashtbl.mem t.defines name -> (
              let body = Hashtbl.find t.defines name in
              match body with
              | [] -> next t
              | first :: rest ->
                  t.pending <- List.map (fun tk -> (tk, loc)) rest;
                  (first, loc))
          | tok -> (tok, loc)))

(* Convenience for tests: all tokens of a source string. *)
let tokenize ?file src =
  let t = create ?file src in
  let rec go acc =
    match next t with
    | Token.Eof, _ -> List.rev (Token.Eof :: acc)
    | tok, _ -> go (tok :: acc)
  in
  go []
