(* Abstract syntax of the C subset.  The parser resolves declarators
   directly to [Vpc_il.Ty.t]; semantic analysis later fills the mutable
   annotations ([ty] on expressions, [var] on identifiers) in place. *)

open Vpc_support
open Vpc_il

type unop =
  | U_plus    (* unary +, a no-op after promotion *)
  | U_neg
  | U_lognot
  | U_bitnot
  | U_deref
  | U_addr

type binop =
  | B_add | B_sub | B_mul | B_div | B_rem
  | B_shl | B_shr | B_and | B_or | B_xor
  | B_eq | B_ne | B_lt | B_le | B_gt | B_ge

type logop = L_and | L_or

type expr = {
  desc : expr_desc;
  eloc : Loc.t;
  mutable ty : Ty.t option;      (* value type (after decay), filled by Sema *)
  mutable var : Var.t option;    (* E_ident resolution, filled by Sema *)
  mutable const_size : int option;  (* sizeof nodes: the resolved size *)
}

and expr_desc =
  | E_int of int
  | E_float of float * bool      (* is_double *)
  | E_char of char
  | E_string of string
  | E_ident of string
  | E_call of expr * expr list
  | E_index of expr * expr
  | E_member of expr * string
  | E_arrow of expr * string
  | E_unop of unop * expr
  | E_incdec of { incr : bool; prefix : bool; arg : expr }
  | E_binop of binop * expr * expr
  | E_logical of logop * expr * expr
  | E_cond of expr * expr * expr
  | E_assign of expr * expr
  | E_opassign of binop * expr * expr
  | E_comma of expr * expr
  | E_cast of Ty.t * expr
  | E_sizeof_type of Ty.t
  | E_sizeof_expr of expr

type storage_class = Sc_none | Sc_static | Sc_extern | Sc_typedef

type decl = {
  d_name : string;
  d_ty : Ty.t;
  d_storage : storage_class;
  d_volatile : bool;
  d_init : init option;
  d_loc : Loc.t;
  mutable d_var : Var.t option;  (* the variable Sema created for this decl *)
}

and init = I_expr of expr | I_list of init list

type pragma = string list

type stmt = { sdesc : stmt_desc; sloc : Loc.t }

and stmt_desc =
  | S_expr of expr option
  | S_block of block_item list
  | S_if of expr * stmt * stmt option
  | S_while of pragma list * expr * stmt
  | S_do of stmt * expr
  | S_for of pragma list * expr option * expr option * expr option * stmt
  | S_return of expr option
  | S_break
  | S_continue
  | S_goto of string
  | S_label of string * stmt
  | S_switch of expr * stmt
  | S_case of expr * stmt
  | S_default of stmt

and block_item = Bi_decl of decl | Bi_stmt of stmt

type param = { p_name : string; p_ty : Ty.t; p_volatile : bool; p_loc : Loc.t }

type fundef = {
  fd_name : string;
  fd_ret : Ty.t;
  fd_params : param list;
  fd_varargs : bool;
  fd_static : bool;
  fd_body : stmt;  (* always an S_block *)
  fd_loc : Loc.t;
}

type top =
  | Top_func of fundef
  | Top_decl of decl
  | Top_proto of { name : string; ty : Ty.t; loc : Loc.t }

type translation_unit = {
  tu_structs : Ty.struct_env;
  tu_tops : top list;
}

let mk_expr ?(loc = Loc.dummy) desc =
  { desc; eloc = loc; ty = None; var = None; const_size = None }
let mk_stmt ?(loc = Loc.dummy) sdesc = { sdesc; sloc = loc }

(* Type of an annotated expression; Sema must have run. *)
let ty_exn (e : expr) =
  match e.ty with
  | Some t -> t
  | None -> Diag.internal "expression not annotated by Sema"
