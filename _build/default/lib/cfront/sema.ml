(* Semantic analysis: scope resolution, type checking and annotation.
   Sema builds the program skeleton (structs, globals, function shells
   with parameter variables) and annotates the AST in place; Lower then
   translates the annotated AST into IL bodies. *)

open Vpc_support
open Vpc_il

type fsig = { ret : Ty.t; args : Ty.t list option (* None = unknown/varargs *) }

type t = {
  prog : Prog.t;
  scopes : (string, Var.t) Hashtbl.t Stack.t;
  fsigs : (string, fsig) Hashtbl.t;
  mutable current : Func.t option;
  mutable static_count : int;
}

(* Known library functions the Titan runtime provides (paper §2: math and
   graphics libraries). *)
let builtin_sigs =
  [
    ("printf", { ret = Ty.Int; args = None });
    ("putchar", { ret = Ty.Int; args = Some [ Ty.Int ] });
    ("puts", { ret = Ty.Int; args = Some [ Ty.Ptr Ty.Char ] });
    ("sqrt", { ret = Ty.Double; args = Some [ Ty.Double ] });
    ("sqrtf", { ret = Ty.Float; args = Some [ Ty.Float ] });
    ("fabs", { ret = Ty.Double; args = Some [ Ty.Double ] });
    ("fabsf", { ret = Ty.Float; args = Some [ Ty.Float ] });
    ("abs", { ret = Ty.Int; args = Some [ Ty.Int ] });
    ("exp", { ret = Ty.Double; args = Some [ Ty.Double ] });
    ("sin", { ret = Ty.Double; args = Some [ Ty.Double ] });
    ("cos", { ret = Ty.Double; args = Some [ Ty.Double ] });
  ]

let create () =
  let t =
    {
      prog = Prog.create ();
      scopes = Stack.create ();
      fsigs = Hashtbl.create 16;
      current = None;
      static_count = 0;
    }
  in
  List.iter (fun (n, s) -> Hashtbl.replace t.fsigs n s) builtin_sigs;
  t

let error loc fmt = Diag.error ~loc fmt

let push_scope t = Stack.push (Hashtbl.create 8) t.scopes
let pop_scope t = ignore (Stack.pop t.scopes)

let lookup t name =
  Stack.fold
    (fun acc scope ->
      match acc with Some _ -> acc | None -> Hashtbl.find_opt scope name)
    None t.scopes

let declare t name (v : Var.t) =
  match Stack.top_opt t.scopes with
  | Some scope -> Hashtbl.replace scope name v
  | None -> Diag.internal "no scope to declare %s" name

(* ----------------------------------------------------------------- *)
(* Expression typing                                                 *)
(* ----------------------------------------------------------------- *)

(* The "value type" of an expression: arrays decay to pointers. *)
let value_ty ty = Ty.decay ty

let is_lvalue (e : Ast.expr) =
  match e.desc with
  | Ast.E_ident _ -> (
      match e.var with
      | Some v -> not (Var.is_memory_object v)  (* arrays are not assignable *)
      | None -> false)
  | Ast.E_index _ | Ast.E_member _ | Ast.E_arrow _
  | Ast.E_unop (Ast.U_deref, _) ->
      true
  | _ -> false

(* Can [e] be the operand of &?  Same as lvalue, plus whole arrays. *)
let is_addressable (e : Ast.expr) =
  is_lvalue e
  || match e.desc with Ast.E_ident _ -> e.var <> None | _ -> false

let struct_of t loc ty =
  match ty with
  | Ty.Struct tag -> (
      match Hashtbl.find_opt t.prog.Prog.structs tag with
      | Some def -> def
      | None -> error loc "struct %s has no definition" tag)
  | other -> error loc "member access on non-struct type %s" (Ty.to_string other)

let rec check_expr t (e : Ast.expr) : Ty.t =
  let ty = infer_expr t e in
  e.Ast.ty <- Some ty;
  ty

and infer_expr t (e : Ast.expr) : Ty.t =
  let loc = e.Ast.eloc in
  match e.Ast.desc with
  | Ast.E_int _ -> Ty.Int
  | Ast.E_float (_, is_double) -> if is_double then Ty.Double else Ty.Float
  | Ast.E_char _ -> Ty.Int  (* character constants have type int in C *)
  | Ast.E_string _ -> Ty.Ptr Ty.Char
  | Ast.E_ident name -> (
      match lookup t name with
      | Some v ->
          e.Ast.var <- Some v;
          value_ty v.ty
      | None -> error loc "undeclared identifier %s" name)
  | Ast.E_call (callee, args) -> (
      let arg_tys = List.map (check_expr t) args in
      match callee.Ast.desc with
      | Ast.E_ident fname -> (
          callee.Ast.ty <- Some Ty.Void;
          match Hashtbl.find_opt t.fsigs fname with
          | Some { ret; args = Some formals } ->
              if List.length formals <> List.length arg_tys then
                error loc "call to %s with %d arguments (expected %d)" fname
                  (List.length arg_tys) (List.length formals);
              ret
          | Some { ret; args = None } -> ret
          | None ->
              Diag.warn ~loc "implicit declaration of function %s" fname;
              Hashtbl.replace t.fsigs fname { ret = Ty.Int; args = None };
              Ty.Int)
      | _ -> error loc "only direct calls are supported")
  | Ast.E_index (base, idx) -> (
      let bty = check_expr t base in
      let ity = check_expr t idx in
      if not (Ty.is_integer ity) then error loc "array subscript is not an integer";
      match bty with
      | Ty.Ptr elt -> value_ty elt
      | _ -> error loc "subscripted value is not an array or pointer")
  | Ast.E_member (base, field) ->
      let bty = check_expr t base in
      let def = struct_of t loc bty in
      (match List.assoc_opt field def.fields with
      | Some fty -> value_ty fty
      | None -> error loc "no member %s in struct %s" field def.tag)
  | Ast.E_arrow (base, field) -> (
      let bty = check_expr t base in
      match bty with
      | Ty.Ptr sty ->
          let def = struct_of t loc sty in
          (match List.assoc_opt field def.fields with
          | Some fty -> value_ty fty
          | None -> error loc "no member %s in struct %s" field def.tag)
      | _ -> error loc "-> applied to non-pointer")
  | Ast.E_unop (op, arg) -> (
      let aty = check_expr t arg in
      match op with
      | Ast.U_plus | Ast.U_neg ->
          if not (Ty.is_arith aty) then error loc "unary +/- on non-arithmetic";
          if Ty.is_integer aty then Ty.Int else aty
      | Ast.U_lognot ->
          if not (Ty.is_scalar aty) then error loc "! on non-scalar";
          Ty.Int
      | Ast.U_bitnot ->
          if not (Ty.is_integer aty) then error loc "~ on non-integer";
          Ty.Int
      | Ast.U_deref -> (
          match aty with
          | Ty.Ptr elt -> value_ty elt
          | _ -> error loc "dereference of non-pointer")
      | Ast.U_addr ->
          if not (is_addressable arg) then error loc "& of non-lvalue";
          (* &array-var has the array's element pointer type in our IL *)
          (match arg.Ast.desc, arg.Ast.var with
          | Ast.E_ident _, Some v -> (
              match v.ty with
              | Ty.Array (elt, _) -> Ty.Ptr elt
              | ty -> Ty.Ptr ty)
          | _ -> Ty.Ptr aty))
  | Ast.E_incdec { arg; _ } ->
      let aty = check_expr t arg in
      if not (is_lvalue arg) then error loc "++/-- on non-lvalue";
      if not (Ty.is_scalar aty) then error loc "++/-- on non-scalar";
      aty
  | Ast.E_binop (op, a, b) -> (
      let ta = check_expr t a in
      let tb = check_expr t b in
      match op with
      | Ast.B_add -> (
          match ta, tb with
          | Ty.Ptr _, i when Ty.is_integer i -> ta
          | i, Ty.Ptr _ when Ty.is_integer i -> tb
          | _ when Ty.is_arith ta && Ty.is_arith tb -> Ty.common_arith ta tb
          | _ -> error loc "invalid operands to +")
      | Ast.B_sub -> (
          match ta, tb with
          | Ty.Ptr _, i when Ty.is_integer i -> ta
          | Ty.Ptr _, Ty.Ptr _ -> Ty.Int
          | _ when Ty.is_arith ta && Ty.is_arith tb -> Ty.common_arith ta tb
          | _ -> error loc "invalid operands to -")
      | Ast.B_mul | Ast.B_div ->
          if not (Ty.is_arith ta && Ty.is_arith tb) then
            error loc "invalid operands to * or /";
          Ty.common_arith ta tb
      | Ast.B_rem | Ast.B_shl | Ast.B_shr | Ast.B_and | Ast.B_or | Ast.B_xor ->
          if not (Ty.is_integer ta && Ty.is_integer tb) then
            error loc "integer operator on non-integers";
          Ty.Int
      | Ast.B_eq | Ast.B_ne | Ast.B_lt | Ast.B_le | Ast.B_gt | Ast.B_ge ->
          if not ((Ty.is_arith ta && Ty.is_arith tb)
                 || (Ty.is_pointer ta && Ty.is_pointer tb)
                 || (Ty.is_pointer ta && Ty.is_integer tb)
                 || (Ty.is_integer ta && Ty.is_pointer tb))
          then error loc "invalid comparison operands";
          Ty.Int)
  | Ast.E_logical (_, a, b) ->
      let ta = check_expr t a and tb = check_expr t b in
      if not (Ty.is_scalar ta && Ty.is_scalar tb) then
        error loc "&&/|| on non-scalar operands";
      Ty.Int
  | Ast.E_cond (c, x, y) ->
      let tc = check_expr t c in
      if not (Ty.is_scalar tc) then error loc "condition is not scalar";
      let tx = check_expr t x and ty_ = check_expr t y in
      if Ty.is_arith tx && Ty.is_arith ty_ then Ty.common_arith tx ty_
      else if Ty.equal tx ty_ then tx
      else if Ty.is_pointer tx && Ty.is_integer ty_ then tx
      else if Ty.is_integer tx && Ty.is_pointer ty_ then ty_
      else error loc "incompatible branches of ?:"
  | Ast.E_assign (lhs, rhs) ->
      let tl = check_expr t lhs in
      let tr = check_expr t rhs in
      if not (is_lvalue lhs) then error loc "assignment to non-lvalue";
      check_assignable loc tl tr;
      tl
  | Ast.E_opassign (op, lhs, rhs) ->
      let tl = check_expr t lhs in
      let tr = check_expr t rhs in
      if not (is_lvalue lhs) then error loc "assignment to non-lvalue";
      (match op with
      | Ast.B_add | Ast.B_sub when Ty.is_pointer tl && Ty.is_integer tr -> ()
      | _ when Ty.is_arith tl && Ty.is_arith tr -> ()
      | _ -> error loc "invalid compound assignment operands");
      tl
  | Ast.E_comma (a, b) ->
      ignore (check_expr t a);
      check_expr t b
  | Ast.E_cast (ty, arg) ->
      let aty = check_expr t arg in
      if not (Ty.is_scalar aty || ty = Ty.Void) then
        error loc "cast of non-scalar value";
      if ty = Ty.Void then Ty.Void else value_ty ty
  | Ast.E_sizeof_type ty ->
      e.Ast.const_size <- Some (Ty.sizeof t.prog.Prog.structs ty);
      Ty.Int
  | Ast.E_sizeof_expr arg ->
      ignore (check_expr t arg);
      (* unconverted type where it matters: arrays via the resolved var *)
      let size =
        match arg.Ast.desc, arg.Ast.var with
        | Ast.E_ident _, Some v -> Ty.sizeof t.prog.Prog.structs v.ty
        | _ -> Ty.sizeof t.prog.Prog.structs (Ast.ty_exn arg)
      in
      e.Ast.const_size <- Some size;
      Ty.Int

and check_assignable loc dst src =
  let ok =
    (Ty.is_arith dst && Ty.is_arith src)
    || (Ty.is_pointer dst && Ty.is_pointer src)
    || (Ty.is_pointer dst && Ty.is_integer src)  (* p = 0 and friends *)
    || (Ty.is_integer dst && Ty.is_pointer src)
    || Ty.equal dst src
  in
  if not ok then
    error loc "incompatible types in assignment (%s from %s)"
      (Ty.to_string dst) (Ty.to_string src)

(* ----------------------------------------------------------------- *)
(* Declarations and statements                                       *)
(* ----------------------------------------------------------------- *)

let make_var t ?(storage = Var.Auto) ?(volatile = false) ?(is_temp = false)
    name ty =
  Var.make ~id:(Prog.fresh_var_id t.prog) ~name ~ty ~volatile ~storage ~is_temp
    ()

let complete_array_from_init (d : Ast.decl) =
  match d.d_ty, d.d_init with
  | Ty.Array (elt, None), Some (Ast.I_list items) ->
      Ty.Array (elt, Some (List.length items))
  | Ty.Array (Ty.Char, None), Some (Ast.I_expr { desc = Ast.E_string s; _ }) ->
      Ty.Array (Ty.Char, Some (String.length s + 1))
  | ty, _ -> ty

let rec check_init t loc ty (init : Ast.init) =
  match init with
  | Ast.I_expr e ->
      let ety = check_expr t e in
      (match ty with
      | Ty.Array (Ty.Char, _) -> ()  (* string initializer *)
      | _ -> check_assignable loc (value_ty ty) ety)
  | Ast.I_list items -> (
      match ty with
      | Ty.Array (elt, _) -> List.iter (check_init t loc elt) items
      | Ty.Struct tag ->
          let def = struct_of t loc (Ty.Struct tag) in
          (try
             List.iter2 (fun (_, fty) item -> check_init t loc fty item)
               (List.filteri (fun i _ -> i < List.length items) def.fields)
               items
           with Invalid_argument _ ->
             error loc "too many initializers for struct %s" tag)
      | _ -> error loc "brace initializer for scalar")

let check_local_decl t (d : Ast.decl) =
  let func =
    match t.current with
    | Some f -> f
    | None -> Diag.internal "local declaration outside function"
  in
  let ty = complete_array_from_init d in
  (match ty with
  | Ty.Array (_, None) -> error d.d_loc "array %s has unknown size" d.d_name
  | _ -> ());
  let v =
    match d.d_storage with
    | Ast.Sc_static ->
        (* §7: statics inside inlinable procedures must be externally known;
           we promote them to uniquely-named globals up front. *)
        t.static_count <- t.static_count + 1;
        let gname = Printf.sprintf "%s.%s" func.Func.name d.d_name in
        let v = make_var t ~storage:Var.Static ~volatile:d.d_volatile gname ty in
        Prog.add_global t.prog v;
        v
    | Ast.Sc_extern ->
        let v = make_var t ~storage:Var.Extern ~volatile:d.d_volatile d.d_name ty in
        Prog.add_global t.prog v;
        v
    | Ast.Sc_none | Ast.Sc_typedef ->
        let v = make_var t ~storage:Var.Auto ~volatile:d.d_volatile d.d_name ty in
        Func.add_var func v;
        v
  in
  d.d_var <- Some v;
  declare t d.d_name v;
  Option.iter (check_init t d.d_loc ty) d.d_init

let rec check_stmt t (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.S_expr None -> ()
  | Ast.S_expr (Some e) -> ignore (check_expr t e)
  | Ast.S_block items ->
      push_scope t;
      List.iter
        (function
          | Ast.Bi_decl d -> check_local_decl t d
          | Ast.Bi_stmt s -> check_stmt t s)
        items;
      pop_scope t
  | Ast.S_if (c, then_, else_) ->
      ignore (check_expr t c);
      check_stmt t then_;
      Option.iter (check_stmt t) else_
  | Ast.S_while (_, c, body) ->
      ignore (check_expr t c);
      check_stmt t body
  | Ast.S_do (body, c) ->
      check_stmt t body;
      ignore (check_expr t c)
  | Ast.S_for (_, init, cond, inc, body) ->
      Option.iter (fun e -> ignore (check_expr t e)) init;
      Option.iter (fun e -> ignore (check_expr t e)) cond;
      Option.iter (fun e -> ignore (check_expr t e)) inc;
      check_stmt t body
  | Ast.S_return None -> ()
  | Ast.S_return (Some e) -> ignore (check_expr t e)
  | Ast.S_break | Ast.S_continue | Ast.S_goto _ -> ()
  | Ast.S_label (_, s) -> check_stmt t s
  | Ast.S_switch (e, body) ->
      let ty = check_expr t e in
      if not (Ty.is_integer ty) then
        error s.Ast.sloc "switch on non-integer value";
      check_stmt t body
  | Ast.S_case (e, body) ->
      ignore (check_expr t e);
      check_stmt t body
  | Ast.S_default body -> check_stmt t body

(* ----------------------------------------------------------------- *)
(* Top level                                                         *)
(* ----------------------------------------------------------------- *)

let check_global_decl t (d : Ast.decl) =
  let ty = complete_array_from_init d in
  (match ty with
  | Ty.Array (_, None) when d.d_init = None && d.d_storage <> Ast.Sc_extern ->
      error d.d_loc "global array %s has unknown size" d.d_name
  | _ -> ());
  let storage =
    match d.d_storage with
    | Ast.Sc_static -> Var.Static
    | Ast.Sc_extern -> Var.Extern
    | Ast.Sc_none | Ast.Sc_typedef -> Var.Global
  in
  let v = make_var t ~storage ~volatile:d.d_volatile d.d_name ty in
  d.d_var <- Some v;
  Prog.add_global t.prog v;
  declare t d.d_name v;
  Option.iter (check_init t d.d_loc ty) d.d_init

let check_fundef t (fd : Ast.fundef) : Func.t =
  let func =
    Func.create ~name:fd.fd_name ~ret_ty:fd.fd_ret ~is_static:fd.fd_static
      ~loc:fd.fd_loc ()
  in
  Hashtbl.replace t.fsigs fd.fd_name
    {
      ret = fd.fd_ret;
      args =
        (if fd.fd_varargs then None
         else Some (List.map (fun (p : Ast.param) -> p.p_ty) fd.fd_params));
    };
  Prog.add_func t.prog func;
  t.current <- Some func;
  push_scope t;
  let params =
    List.map
      (fun (p : Ast.param) ->
        if p.p_name = "" then error p.p_loc "parameter missing a name";
        let v =
          make_var t ~storage:Var.Param ~volatile:p.p_volatile p.p_name p.p_ty
        in
        Func.add_var func v;
        declare t p.p_name v;
        v.id)
      fd.fd_params
  in
  let func = { func with params } in
  Prog.replace_func t.prog func;
  t.current <- Some func;
  check_stmt t fd.fd_body;
  pop_scope t;
  t.current <- None;
  func

type result = {
  prog : Prog.t;
  fundefs : (Func.t * Ast.fundef) list;
  globals : Ast.decl list;  (* with d_var filled *)
  fsigs : (string, fsig) Hashtbl.t;
}

let check_translation_unit (tu : Ast.translation_unit) : result =
  Diag.reset_warnings ();
  let t = create () in
  Hashtbl.iter (Hashtbl.replace t.prog.Prog.structs) tu.tu_structs;
  push_scope t;  (* file scope *)
  let fundefs = ref [] in
  let globals = ref [] in
  List.iter
    (fun top ->
      match top with
      | Ast.Top_decl d ->
          check_global_decl t d;
          globals := d :: !globals
      | Ast.Top_proto { name; ty = Ty.Func (ret, args); _ } ->
          Hashtbl.replace t.fsigs name { ret; args = Some args }
      | Ast.Top_proto { name; loc; _ } ->
          error loc "bad prototype for %s" name
      | Ast.Top_func fd ->
          let func = check_fundef t fd in
          fundefs := (func, fd) :: !fundefs)
    tu.tu_tops;
  pop_scope t;
  {
    prog = t.prog;
    fundefs = List.rev !fundefs;
    globals = List.rev !globals;
    fsigs = t.fsigs;
  }
