(* Recursive-descent parser for the C subset.  Declarators resolve
   directly to IL types; struct definitions are registered into the
   translation unit's struct environment as they are parsed; typedef names
   are tracked so the declaration/statement ambiguity resolves the usual
   way. *)

open Vpc_support
open Vpc_il

type t = {
  lexer : Lexer.t;
  mutable tok : Token.t;
  mutable loc : Loc.t;
  structs : Ty.struct_env;
  typedefs : (string, Ty.t) Hashtbl.t;
  enum_constants : (string, int) Hashtbl.t;
  mutable anon_struct_count : int;
}

let advance p =
  let tok, loc = Lexer.next p.lexer in
  p.tok <- tok;
  p.loc <- loc

let create ?file src =
  let lexer = Lexer.create ?file src in
  let tok, loc = Lexer.next lexer in
  {
    lexer;
    tok;
    loc;
    structs = Hashtbl.create 8;
    typedefs = Hashtbl.create 8;
    enum_constants = Hashtbl.create 8;
    anon_struct_count = 0;
  }

let error p fmt = Diag.error ~loc:p.loc fmt

let expect p tok =
  if p.tok = tok then advance p
  else error p "expected '%s' but found '%s'" (Token.to_string tok)
      (Token.to_string p.tok)

let expect_ident p =
  match p.tok with
  | Token.Ident name ->
      advance p;
      name
  | other -> error p "expected identifier, found '%s'" (Token.to_string other)

let accept p tok =
  if p.tok = tok then begin
    advance p;
    true
  end
  else false

(* Binary operator precedence levels, loosest first. *)
let binop_levels =
  [|
    [ (Token.Pipe, Ast.B_or) ];
    [ (Token.Caret, Ast.B_xor) ];
    [ (Token.Amp, Ast.B_and) ];
    [ (Token.Eq_eq, Ast.B_eq); (Token.Bang_eq, Ast.B_ne) ];
    [ (Token.Lt, Ast.B_lt); (Token.Le, Ast.B_le); (Token.Gt, Ast.B_gt);
      (Token.Ge, Ast.B_ge) ];
    [ (Token.Shl, Ast.B_shl); (Token.Shr, Ast.B_shr) ];
    [ (Token.Plus, Ast.B_add); (Token.Minus, Ast.B_sub) ];
    [ (Token.Star, Ast.B_mul); (Token.Slash, Ast.B_div);
      (Token.Percent, Ast.B_rem) ];
  |]

(* ----------------------------------------------------------------- *)
(* Type parsing                                                      *)
(* ----------------------------------------------------------------- *)

let is_typedef_name p name = Hashtbl.mem p.typedefs name

(* Does the current token start a declaration? *)
let starts_decl p =
  match p.tok with
  | Token.Kw_void | Token.Kw_char | Token.Kw_int | Token.Kw_float
  | Token.Kw_double | Token.Kw_long | Token.Kw_short | Token.Kw_unsigned
  | Token.Kw_signed | Token.Kw_struct | Token.Kw_union | Token.Kw_enum
  | Token.Kw_static | Token.Kw_extern | Token.Kw_register | Token.Kw_auto
  | Token.Kw_typedef | Token.Kw_volatile | Token.Kw_const ->
      true
  | Token.Ident name -> is_typedef_name p name
  | _ -> false

type declspecs = {
  base : Ty.t;
  storage : Ast.storage_class;
  volatile : bool;
}

(* Integer modifiers (long/short/signed/unsigned) all collapse onto [int];
   the Titan subset has a single integer width, as §2's machine does. *)
let rec parse_declspecs p =
  let base = ref None in
  let storage = ref Ast.Sc_none in
  let volatile = ref false in
  let saw_int_modifier = ref false in
  let set_base ty =
    match !base with
    | None -> base := Some ty
    | Some Ty.Int when ty = Ty.Double ->
        (* "long double" etc.: keep the float type *)
        base := Some ty
    | Some _ -> error p "conflicting type specifiers"
  in
  let continue_ = ref true in
  while !continue_ do
    (match p.tok with
    | Token.Kw_void -> advance p; set_base Ty.Void
    | Token.Kw_char -> advance p; set_base Ty.Char
    | Token.Kw_int -> advance p; if !base = None then base := Some Ty.Int
    | Token.Kw_float -> advance p; set_base Ty.Float
    | Token.Kw_double -> advance p; set_base Ty.Double
    | Token.Kw_long | Token.Kw_short | Token.Kw_unsigned | Token.Kw_signed ->
        advance p;
        saw_int_modifier := true
    | Token.Kw_struct | Token.Kw_union -> set_base (parse_struct p)
    | Token.Kw_enum -> set_base (parse_enum p)
    | Token.Kw_static -> advance p; storage := Ast.Sc_static
    | Token.Kw_extern -> advance p; storage := Ast.Sc_extern
    | Token.Kw_typedef -> advance p; storage := Ast.Sc_typedef
    | Token.Kw_register | Token.Kw_auto -> advance p
    | Token.Kw_volatile -> advance p; volatile := true
    | Token.Kw_const -> advance p
    | Token.Ident name when !base = None && not !saw_int_modifier
                            && is_typedef_name p name ->
        advance p;
        base := Some (Hashtbl.find p.typedefs name)
    | _ -> continue_ := false);
    match p.tok with
    | Token.Ident name when !base <> None || !saw_int_modifier ->
        (* an identifier after a complete type is the declarator *)
        ignore name;
        continue_ := false
    | _ -> ()
  done;
  let base =
    match !base with
    | Some t -> t
    | None when !saw_int_modifier -> Ty.Int
    | None -> error p "expected type specifier"
  in
  { base; storage = !storage; volatile = !volatile }

and parse_struct p =
  (match p.tok with
  | Token.Kw_union -> Diag.warn ~loc:p.loc "union treated as struct"
  | _ -> ());
  advance p;
  (* struct/union *)
  let tag =
    match p.tok with
    | Token.Ident name ->
        advance p;
        name
    | _ ->
        p.anon_struct_count <- p.anon_struct_count + 1;
        Printf.sprintf "__anon%d" p.anon_struct_count
  in
  if accept p Token.Lbrace then begin
    let fields = ref [] in
    while p.tok <> Token.Rbrace do
      let specs = parse_declspecs p in
      let rec field_loop () =
        let name, ty = parse_declarator p specs.base in
        (match name with
        | Some n -> fields := (n, ty) :: !fields
        | None -> error p "expected field name");
        if accept p Token.Comma then field_loop ()
      in
      field_loop ();
      expect p Token.Semi
    done;
    expect p Token.Rbrace;
    Hashtbl.replace p.structs tag { Ty.tag; fields = List.rev !fields }
  end;
  Ty.Struct tag

(* enum [tag] { A, B = k, C } — enumerators become integer constants in
   the parser's constant table; the type is plain int. *)
and parse_enum p =
  advance p;
  (* 'enum' *)
  (match p.tok with
  | Token.Ident _ -> advance p  (* tags carry no information for us *)
  | _ -> ());
  if accept p Token.Lbrace then begin
    let next = ref 0 in
    let rec go () =
      match p.tok with
      | Token.Rbrace -> ()
      | Token.Ident name ->
          advance p;
          (if accept p Token.Assign then
             let v = parse_const_int p in
             next := v);
          Hashtbl.replace p.enum_constants name !next;
          incr next;
          if accept p Token.Comma then go ()
      | _ -> error p "expected enumerator name"
    in
    go ();
    expect p Token.Rbrace
  end;
  Ty.Int

(* Parse a declarator given the base type; returns (name option, type).
   Implements the usual inside-out C declarator reading. *)
and parse_declarator p base : string option * Ty.t =
  (* pointers *)
  let rec pointers ty =
    if accept p Token.Star then begin
      (* qualifiers after * apply to the pointer; we drop const, keep going *)
      while accept p Token.Kw_const || accept p Token.Kw_volatile do
        ()
      done;
      pointers (Ty.Ptr ty)
    end
    else ty
  in
  let ty = pointers base in
  parse_direct_declarator p ty

and parse_direct_declarator p ty : string option * Ty.t =
  (* Parenthesized declarators (function pointers) are outside the subset:
     C's indirect calls are not supported, as the paper's compiler also
     assumed direct calls for inlining. *)
  let name =
    match p.tok with
    | Token.Ident n ->
        advance p;
        Some n
    | _ -> None
  in
  let rec suffixes ty =
    match p.tok with
    | Token.Lbracket ->
        advance p;
        let size =
          if p.tok = Token.Rbracket then None else Some (parse_const_int p)
        in
        expect p Token.Rbracket;
        let ty = suffixes ty in
        Ty.Array (ty, size)
    | Token.Lparen ->
        advance p;
        let params = parse_param_types p in
        expect p Token.Rparen;
        Ty.Func (ty, params)
    | _ -> ty
  in
  (name, suffixes ty)

and parse_param_types p : Ty.t list =
  if p.tok = Token.Rparen then []
  else if p.tok = Token.Kw_void then begin
    (* could be (void) or (void *x, ...) *)
    let specs = parse_declspecs p in
    if p.tok = Token.Rparen && specs.base = Ty.Void then []
    else begin
      let _, ty = parse_declarator p specs.base in
      let ty = Ty.decay ty in
      ty :: parse_more_param_types p
    end
  end
  else begin
    let specs = parse_declspecs p in
    let _, ty = parse_declarator p specs.base in
    Ty.decay ty :: parse_more_param_types p
  end

and parse_more_param_types p =
  if accept p Token.Comma then begin
    if p.tok = Token.Ellipsis then begin
      advance p;
      []
    end
    else begin
      let specs = parse_declspecs p in
      let _, ty = parse_declarator p specs.base in
      Ty.decay ty :: parse_more_param_types p
    end
  end
  else []

(* ----------------------------------------------------------------- *)
(* Constant expressions (array sizes, case labels)                   *)
(* ----------------------------------------------------------------- *)

and parse_const_int p =
  let e = parse_cond_expr p in
  const_eval p e

and const_eval p (e : Ast.expr) : int =
  match e.desc with
  | Ast.E_int n -> n
  | Ast.E_char c -> Char.code c
  | Ast.E_unop (Ast.U_neg, a) -> -const_eval p a
  | Ast.E_unop (Ast.U_bitnot, a) -> lnot (const_eval p a)
  | Ast.E_unop (Ast.U_lognot, a) -> if const_eval p a = 0 then 1 else 0
  | Ast.E_binop (op, a, b) -> (
      let x = const_eval p a and y = const_eval p b in
      match op with
      | Ast.B_add -> x + y
      | Ast.B_sub -> x - y
      | Ast.B_mul -> x * y
      | Ast.B_div ->
          if y = 0 then error p "division by zero in constant" else x / y
      | Ast.B_rem ->
          if y = 0 then error p "modulo by zero in constant" else x mod y
      | Ast.B_shl -> x lsl y
      | Ast.B_shr -> x asr y
      | Ast.B_and -> x land y
      | Ast.B_or -> x lor y
      | Ast.B_xor -> x lxor y
      | Ast.B_eq -> if x = y then 1 else 0
      | Ast.B_ne -> if x <> y then 1 else 0
      | Ast.B_lt -> if x < y then 1 else 0
      | Ast.B_le -> if x <= y then 1 else 0
      | Ast.B_gt -> if x > y then 1 else 0
      | Ast.B_ge -> if x >= y then 1 else 0)
  | Ast.E_sizeof_type ty -> Ty.sizeof p.structs ty
  | _ -> error p "expected integer constant expression"

(* ----------------------------------------------------------------- *)
(* Expressions                                                       *)
(* ----------------------------------------------------------------- *)

and parse_expr p : Ast.expr =
  let e = parse_assign_expr p in
  if p.tok = Token.Comma then begin
    advance p;
    let rhs = parse_expr p in
    Ast.mk_expr ~loc:e.Ast.eloc (Ast.E_comma (e, rhs))
  end
  else e

and parse_assign_expr p : Ast.expr =
  let lhs = parse_cond_expr p in
  let mk op =
    advance p;
    let rhs = parse_assign_expr p in
    Ast.mk_expr ~loc:lhs.Ast.eloc
      (match op with
      | None -> Ast.E_assign (lhs, rhs)
      | Some op -> Ast.E_opassign (op, lhs, rhs))
  in
  match p.tok with
  | Token.Assign -> mk None
  | Token.Plus_assign -> mk (Some Ast.B_add)
  | Token.Minus_assign -> mk (Some Ast.B_sub)
  | Token.Star_assign -> mk (Some Ast.B_mul)
  | Token.Slash_assign -> mk (Some Ast.B_div)
  | Token.Percent_assign -> mk (Some Ast.B_rem)
  | Token.Amp_assign -> mk (Some Ast.B_and)
  | Token.Pipe_assign -> mk (Some Ast.B_or)
  | Token.Caret_assign -> mk (Some Ast.B_xor)
  | Token.Shl_assign -> mk (Some Ast.B_shl)
  | Token.Shr_assign -> mk (Some Ast.B_shr)
  | _ -> lhs

and parse_cond_expr p : Ast.expr =
  let c = parse_logor_expr p in
  if accept p Token.Question then begin
    let t = parse_expr p in
    expect p Token.Colon;
    let e = parse_cond_expr p in
    Ast.mk_expr ~loc:c.Ast.eloc (Ast.E_cond (c, t, e))
  end
  else c

and parse_logor_expr p =
  let rec go lhs =
    if accept p Token.Pipe_pipe then
      let rhs = parse_logand_expr p in
      go (Ast.mk_expr ~loc:lhs.Ast.eloc (Ast.E_logical (Ast.L_or, lhs, rhs)))
    else lhs
  in
  go (parse_logand_expr p)

and parse_logand_expr p =
  let rec go lhs =
    if accept p Token.Amp_amp then
      let rhs = parse_bitor_expr p in
      go (Ast.mk_expr ~loc:lhs.Ast.eloc (Ast.E_logical (Ast.L_and, lhs, rhs)))
    else lhs
  in
  go (parse_bitor_expr p)

and parse_bitor_expr p = parse_binop_level p 0

and parse_binop_level p level =
  if level >= Array.length binop_levels then parse_cast_expr p
  else begin
    let ops = binop_levels.(level) in
    let rec go lhs =
      match List.assoc_opt p.tok ops with
      | Some op ->
          advance p;
          let rhs = parse_binop_level p (level + 1) in
          go (Ast.mk_expr ~loc:lhs.Ast.eloc (Ast.E_binop (op, lhs, rhs)))
      | None -> lhs
    in
    go (parse_binop_level p (level + 1))

  end

and parse_unary_expr p : Ast.expr =
  let loc = p.loc in
  match p.tok with
  | Token.Plus_plus ->
      advance p;
      let arg = parse_unary_expr p in
      Ast.mk_expr ~loc (Ast.E_incdec { incr = true; prefix = true; arg })
  | Token.Minus_minus ->
      advance p;
      let arg = parse_unary_expr p in
      Ast.mk_expr ~loc (Ast.E_incdec { incr = false; prefix = true; arg })
  | Token.Plus ->
      advance p;
      Ast.mk_expr ~loc (Ast.E_unop (Ast.U_plus, parse_cast_expr p))
  | Token.Minus ->
      advance p;
      Ast.mk_expr ~loc (Ast.E_unop (Ast.U_neg, parse_cast_expr p))
  | Token.Bang ->
      advance p;
      Ast.mk_expr ~loc (Ast.E_unop (Ast.U_lognot, parse_cast_expr p))
  | Token.Tilde ->
      advance p;
      Ast.mk_expr ~loc (Ast.E_unop (Ast.U_bitnot, parse_cast_expr p))
  | Token.Star ->
      advance p;
      Ast.mk_expr ~loc (Ast.E_unop (Ast.U_deref, parse_cast_expr p))
  | Token.Amp ->
      advance p;
      Ast.mk_expr ~loc (Ast.E_unop (Ast.U_addr, parse_cast_expr p))
  | Token.Kw_sizeof ->
      advance p;
      if p.tok = Token.Lparen then begin
        (* sizeof(type) or sizeof(expr) *)
        advance p;
        if starts_decl p then begin
          let ty = parse_type_name p in
          expect p Token.Rparen;
          Ast.mk_expr ~loc (Ast.E_sizeof_type ty)
        end
        else begin
          let e = parse_expr p in
          expect p Token.Rparen;
          Ast.mk_expr ~loc (Ast.E_sizeof_expr e)
        end
      end
      else Ast.mk_expr ~loc (Ast.E_sizeof_expr (parse_unary_expr p))
  | _ -> parse_postfix_expr p

and parse_type_name p : Ty.t =
  let specs = parse_declspecs p in
  let name, ty = parse_declarator p specs.base in
  (match name with
  | Some n -> error p "unexpected identifier %s in type name" n
  | None -> ());
  ty

and parse_cast_expr p : Ast.expr =
  match p.tok with
  | Token.Lparen -> (
      (* lookahead: is this a cast? *)
      let tok2, loc2 = Lexer.next p.lexer in
      let is_type =
        match tok2 with
        | Token.Kw_void | Token.Kw_char | Token.Kw_int | Token.Kw_float
        | Token.Kw_double | Token.Kw_long | Token.Kw_short | Token.Kw_unsigned
        | Token.Kw_signed | Token.Kw_struct | Token.Kw_union | Token.Kw_enum
        | Token.Kw_const | Token.Kw_volatile ->
            true
        | Token.Ident name -> is_typedef_name p name
        | _ -> false
      in
      (* push the lookahead token back *)
      p.lexer.Lexer.pending <- (tok2, loc2) :: p.lexer.Lexer.pending;
      if is_type then begin
        let loc = p.loc in
        advance p;
        (* '(' *)
        let ty = parse_type_name p in
        expect p Token.Rparen;
        let arg = parse_cast_expr p in
        Ast.mk_expr ~loc (Ast.E_cast (ty, arg))
      end
      else parse_unary_expr p)
  | _ -> parse_unary_expr p

and parse_postfix_expr p : Ast.expr =
  let e = parse_primary_expr p in
  let rec go e =
    let loc = p.loc in
    match p.tok with
    | Token.Lbracket ->
        advance p;
        let idx = parse_expr p in
        expect p Token.Rbracket;
        go (Ast.mk_expr ~loc (Ast.E_index (e, idx)))
    | Token.Lparen ->
        advance p;
        let args = ref [] in
        if p.tok <> Token.Rparen then begin
          let rec arg_loop () =
            args := parse_assign_expr p :: !args;
            if accept p Token.Comma then arg_loop ()
          in
          arg_loop ()
        end;
        expect p Token.Rparen;
        go (Ast.mk_expr ~loc (Ast.E_call (e, List.rev !args)))
    | Token.Dot ->
        advance p;
        let f = expect_ident p in
        go (Ast.mk_expr ~loc (Ast.E_member (e, f)))
    | Token.Arrow ->
        advance p;
        let f = expect_ident p in
        go (Ast.mk_expr ~loc (Ast.E_arrow (e, f)))
    | Token.Plus_plus ->
        advance p;
        go (Ast.mk_expr ~loc (Ast.E_incdec { incr = true; prefix = false; arg = e }))
    | Token.Minus_minus ->
        advance p;
        go (Ast.mk_expr ~loc (Ast.E_incdec { incr = false; prefix = false; arg = e }))
    | _ -> e
  in
  go e

and parse_primary_expr p : Ast.expr =
  let loc = p.loc in
  match p.tok with
  | Token.Int_lit n ->
      advance p;
      Ast.mk_expr ~loc (Ast.E_int n)
  | Token.Float_lit (f, is_double) ->
      advance p;
      Ast.mk_expr ~loc (Ast.E_float (f, is_double))
  | Token.Char_lit c ->
      advance p;
      Ast.mk_expr ~loc (Ast.E_char c)
  | Token.String_lit s ->
      advance p;
      (* adjacent string literal concatenation *)
      let buf = Buffer.create (String.length s) in
      Buffer.add_string buf s;
      let rec more () =
        match p.tok with
        | Token.String_lit s2 ->
            advance p;
            Buffer.add_string buf s2;
            more ()
        | _ -> ()
      in
      more ();
      Ast.mk_expr ~loc (Ast.E_string (Buffer.contents buf))
  | Token.Ident name -> (
      advance p;
      match Hashtbl.find_opt p.enum_constants name with
      | Some v -> Ast.mk_expr ~loc (Ast.E_int v)
      | None -> Ast.mk_expr ~loc (Ast.E_ident name))
  | Token.Lparen ->
      advance p;
      let e = parse_expr p in
      expect p Token.Rparen;
      e
  | other -> error p "expected expression, found '%s'" (Token.to_string other)

(* ----------------------------------------------------------------- *)
(* Statements                                                        *)
(* ----------------------------------------------------------------- *)

let rec parse_stmt p : Ast.stmt =
  let loc = p.loc in
  match p.tok with
  | Token.Pragma words ->
      advance p;
      let rec collect acc =
        match p.tok with
        | Token.Pragma more ->
            advance p;
            collect (more :: acc)
        | _ -> List.rev acc
      in
      let pragmas = collect [ words ] in
      let stmt = parse_stmt p in
      attach_pragmas p pragmas stmt
  | Token.Lbrace -> parse_block p
  | Token.Semi ->
      advance p;
      Ast.mk_stmt ~loc (Ast.S_expr None)
  | Token.Kw_if ->
      advance p;
      expect p Token.Lparen;
      let cond = parse_expr p in
      expect p Token.Rparen;
      let then_ = parse_stmt p in
      let else_ = if accept p Token.Kw_else then Some (parse_stmt p) else None in
      Ast.mk_stmt ~loc (Ast.S_if (cond, then_, else_))
  | Token.Kw_while ->
      advance p;
      expect p Token.Lparen;
      let cond = parse_expr p in
      expect p Token.Rparen;
      let body = parse_stmt p in
      Ast.mk_stmt ~loc (Ast.S_while ([], cond, body))
  | Token.Kw_do ->
      advance p;
      let body = parse_stmt p in
      expect p Token.Kw_while;
      expect p Token.Lparen;
      let cond = parse_expr p in
      expect p Token.Rparen;
      expect p Token.Semi;
      Ast.mk_stmt ~loc (Ast.S_do (body, cond))
  | Token.Kw_for ->
      advance p;
      expect p Token.Lparen;
      let init = if p.tok = Token.Semi then None else Some (parse_expr p) in
      expect p Token.Semi;
      let cond = if p.tok = Token.Semi then None else Some (parse_expr p) in
      expect p Token.Semi;
      let inc = if p.tok = Token.Rparen then None else Some (parse_expr p) in
      expect p Token.Rparen;
      let body = parse_stmt p in
      Ast.mk_stmt ~loc (Ast.S_for ([], init, cond, inc, body))
  | Token.Kw_return ->
      advance p;
      let e = if p.tok = Token.Semi then None else Some (parse_expr p) in
      expect p Token.Semi;
      Ast.mk_stmt ~loc (Ast.S_return e)
  | Token.Kw_break ->
      advance p;
      expect p Token.Semi;
      Ast.mk_stmt ~loc Ast.S_break
  | Token.Kw_continue ->
      advance p;
      expect p Token.Semi;
      Ast.mk_stmt ~loc Ast.S_continue
  | Token.Kw_goto ->
      advance p;
      let l = expect_ident p in
      expect p Token.Semi;
      Ast.mk_stmt ~loc (Ast.S_goto l)
  | Token.Kw_switch ->
      advance p;
      expect p Token.Lparen;
      let e = parse_expr p in
      expect p Token.Rparen;
      let body = parse_stmt p in
      Ast.mk_stmt ~loc (Ast.S_switch (e, body))
  | Token.Kw_case ->
      advance p;
      let e = parse_cond_expr p in
      expect p Token.Colon;
      let s = parse_stmt p in
      Ast.mk_stmt ~loc (Ast.S_case (e, s))
  | Token.Kw_default ->
      advance p;
      expect p Token.Colon;
      let s = parse_stmt p in
      Ast.mk_stmt ~loc (Ast.S_default s)
  | Token.Ident name -> (
      (* label or expression statement: look ahead one token *)
      let tok2, loc2 = Lexer.next p.lexer in
      if tok2 = Token.Colon then begin
        (* the colon was already consumed from the lexer by the lookahead;
           one advance fetches the token after it *)
        advance p;
        let s = parse_stmt p in
        Ast.mk_stmt ~loc (Ast.S_label (name, s))
      end
      else begin
        p.lexer.Lexer.pending <- (tok2, loc2) :: p.lexer.Lexer.pending;
        let e = parse_expr p in
        expect p Token.Semi;
        Ast.mk_stmt ~loc (Ast.S_expr (Some e))
      end)
  | _ ->
      let e = parse_expr p in
      expect p Token.Semi;
      Ast.mk_stmt ~loc (Ast.S_expr (Some e))

and attach_pragmas p pragmas (s : Ast.stmt) =
  match s.sdesc with
  | Ast.S_while (old, c, b) ->
      { s with sdesc = Ast.S_while (old @ pragmas, c, b) }
  | Ast.S_for (old, i, c, inc, b) ->
      { s with sdesc = Ast.S_for (old @ pragmas, i, c, inc, b) }
  | _ ->
      Diag.warn ~loc:s.sloc "pragma ignored (not followed by a loop)";
      ignore p;
      s

and parse_block p : Ast.stmt =
  let loc = p.loc in
  expect p Token.Lbrace;
  let items = ref [] in
  while p.tok <> Token.Rbrace do
    if starts_decl p then
      List.iter (fun d -> items := Ast.Bi_decl d :: !items) (parse_local_decl p)
    else items := Ast.Bi_stmt (parse_stmt p) :: !items
  done;
  expect p Token.Rbrace;
  Ast.mk_stmt ~loc (Ast.S_block (List.rev !items))

(* One declaration statement, possibly declaring several names. *)
and parse_local_decl p : Ast.decl list =
  let loc = p.loc in
  let specs = parse_declspecs p in
  if p.tok = Token.Semi then begin
    (* bare struct declaration *)
    advance p;
    []
  end
  else begin
    let decls = ref [] in
    let rec go () =
      let name, ty = parse_declarator p specs.base in
      let name =
        match name with Some n -> n | None -> error p "expected declarator"
      in
      if specs.storage = Ast.Sc_typedef then Hashtbl.replace p.typedefs name ty
      else begin
        let init =
          if accept p Token.Assign then Some (parse_initializer p) else None
        in
        decls :=
          {
            Ast.d_name = name;
            d_ty = ty;
            d_storage = specs.storage;
            d_volatile = specs.volatile;
            d_init = init;
            d_loc = loc;
            d_var = None;
          }
          :: !decls
      end;
      if accept p Token.Comma then go ()
    in
    go ();
    expect p Token.Semi;
    List.rev !decls
  end

and parse_initializer p : Ast.init =
  if p.tok = Token.Lbrace then begin
    advance p;
    let items = ref [] in
    if p.tok <> Token.Rbrace then begin
      let rec go () =
        items := parse_initializer p :: !items;
        if accept p Token.Comma && p.tok <> Token.Rbrace then go ()
      in
      go ()
    end;
    expect p Token.Rbrace;
    Ast.I_list (List.rev !items)
  end
  else Ast.I_expr (parse_assign_expr p)

(* ----------------------------------------------------------------- *)
(* Top level                                                         *)
(* ----------------------------------------------------------------- *)

let parse_params_full p : Ast.param list * bool =
  (* Parse a parameter list with names for a function definition. *)
  if p.tok = Token.Rparen then ([], false)
  else begin
    let params = ref [] in
    let varargs = ref false in
    let one () =
      let specs = parse_declspecs p in
      if specs.base = Ty.Void && p.tok = Token.Rparen then ()
      else begin
        let name, ty = parse_declarator p specs.base in
        let name = Option.value name ~default:"" in
        params :=
          {
            Ast.p_name = name;
            p_ty = Ty.decay ty;
            p_volatile = specs.volatile;
            p_loc = p.loc;
          }
          :: !params
      end
    in
    one ();
    let rec more () =
      if accept p Token.Comma then begin
        if p.tok = Token.Ellipsis then begin
          advance p;
          varargs := true
        end
        else begin
          one ();
          more ()
        end
      end
    in
    more ();
    (List.rev !params, !varargs)
  end

let parse_top p : Ast.top list =
  let loc = p.loc in
  (* K&R-style "name() { ... }" with implied int return *)
  let specs =
    if starts_decl p then parse_declspecs p
    else { base = Ty.Int; storage = Ast.Sc_none; volatile = false }
  in
  if p.tok = Token.Semi then begin
    advance p;
    []
  end
  else begin
    (* Parse first declarator by hand so we can see a following '{'. *)
    let rec pointers ty = if accept p Token.Star then pointers (Ty.Ptr ty) else ty in
    let base = pointers specs.base in
    let name = expect_ident p in
    if p.tok = Token.Lparen then begin
      advance p;
      let params, varargs = parse_params_full p in
      expect p Token.Rparen;
      if p.tok = Token.Lbrace then begin
        let body = parse_block p in
        [
          Ast.Top_func
            {
              fd_name = name;
              fd_ret = base;
              fd_params = params;
              fd_varargs = varargs;
              fd_static = specs.storage = Ast.Sc_static;
              fd_body = body;
              fd_loc = loc;
            };
        ]
      end
      else begin
        expect p Token.Semi;
        [
          Ast.Top_proto
            {
              name;
              ty = Ty.Func (base, List.map (fun (pr : Ast.param) -> pr.p_ty) params);
              loc;
            };
        ]
      end
    end
    else begin
      (* global variable(s) *)
      let rec suffixes ty =
        if accept p Token.Lbracket then begin
          let size = if p.tok = Token.Rbracket then None else Some (parse_const_int p) in
          expect p Token.Rbracket;
          Ty.Array (suffixes ty, size)
        end
        else ty
      in
      let first_ty = suffixes base in
      let mk_decl name ty init =
        {
          Ast.d_name = name;
          d_ty = ty;
          d_storage = specs.storage;
          d_volatile = specs.volatile;
          d_init = init;
          d_loc = loc;
          d_var = None;
        }
      in
      if specs.storage = Ast.Sc_typedef then begin
        Hashtbl.replace p.typedefs name first_ty;
        let rec more () =
          if accept p Token.Comma then begin
            let n2, t2 = parse_declarator p specs.base in
            (match n2 with
            | Some n -> Hashtbl.replace p.typedefs n t2
            | None -> error p "expected name in typedef");
            more ()
          end
        in
        more ();
        expect p Token.Semi;
        []
      end
      else begin
        let decls = ref [] in
        let init =
          if accept p Token.Assign then Some (parse_initializer p) else None
        in
        decls := [ Ast.Top_decl (mk_decl name first_ty init) ];
        let rec more () =
          if accept p Token.Comma then begin
            let n2, t2 = parse_declarator p specs.base in
            let n2 = match n2 with Some n -> n | None -> error p "expected name" in
            let init2 =
              if accept p Token.Assign then Some (parse_initializer p) else None
            in
            decls := Ast.Top_decl (mk_decl n2 t2 init2) :: !decls;
            more ()
          end
        in
        more ();
        expect p Token.Semi;
        List.rev !decls
      end
    end
  end

let parse_translation_unit p : Ast.translation_unit =
  let tops = ref [] in
  while p.tok <> Token.Eof do
    match p.tok with
    | Token.Pragma _ ->
        Diag.warn ~loc:p.loc "file-scope pragma ignored";
        advance p
    | _ -> List.iter (fun top -> tops := top :: !tops) (parse_top p)
  done;
  { Ast.tu_structs = p.structs; tu_tops = List.rev !tops }

let parse ?file src =
  let p = create ?file src in
  parse_translation_unit p

let parse_expr_string ?file src =
  let p = create ?file src in
  parse_expr p
