(* Diagnostics: errors and warnings carrying source locations.  Front-end
   and semantic errors raise [Error]; passes that detect internal
   inconsistencies raise [Internal]. *)

type severity = Error | Warning

type t = {
  severity : severity;
  loc : Loc.t;
  message : string;
}

exception Error_exn of t
exception Internal of string

let error ?(loc = Loc.dummy) fmt =
  Format.kasprintf
    (fun message -> raise (Error_exn { severity = Error; loc; message }))
    fmt

let internal fmt = Format.kasprintf (fun m -> raise (Internal m)) fmt

(* Warnings are collected rather than printed so tests can assert on them. *)
let warnings : t list ref = ref []

let reset_warnings () = warnings := []

let warn ?(loc = Loc.dummy) fmt =
  Format.kasprintf
    (fun message ->
      warnings := { severity = Warning; loc; message } :: !warnings)
    fmt

let pp ppf t =
  let tag = match t.severity with Error -> "error" | Warning -> "warning" in
  Fmt.pf ppf "%a: %s: %s" Loc.pp t.loc tag t.message

let to_string t = Fmt.str "%a" pp t
