(** A minimal s-expression reader/writer used for the pointer-free
    procedure catalogs (paper §7).  Atoms print bare when possible and
    quoted otherwise; [;] starts a comment. *)

type t = Atom of string | List of t list

exception Parse_error of string

(** {1 Construction} *)

val atom : string -> t
val list : t list -> t
val int : int -> t

(** Floats use the hexadecimal [%h] notation: exact round-trips. *)
val float : float -> t

val bool : bool -> t

(** {1 Printing and parsing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Parse exactly one sexp; trailing garbage is an error. *)
val of_string : string -> t

(** Parse a sequence of sexps. *)
val of_string_many : string -> t list

(** {1 Decoding helpers} — raise {!Parse_error} on shape mismatch. *)

val as_atom : t -> string
val as_list : t -> t list
val as_int : t -> int
val as_float : t -> float
val as_bool : t -> bool
