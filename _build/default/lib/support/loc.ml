(* Source locations for diagnostics.  A [t] is a half-open span within one
   file; [dummy] marks compiler-generated constructs. *)

type pos = {
  line : int;  (* 1-based *)
  col : int;   (* 1-based *)
}

type t = {
  file : string;
  start_pos : pos;
  end_pos : pos;
}

let dummy_pos = { line = 0; col = 0 }
let dummy = { file = "<builtin>"; start_pos = dummy_pos; end_pos = dummy_pos }

let make ~file ~start_pos ~end_pos = { file; start_pos; end_pos }

let is_dummy t = t.start_pos.line = 0

let merge a b =
  if is_dummy a then b
  else if is_dummy b then a
  else { a with end_pos = b.end_pos }

let pp ppf t =
  if is_dummy t then Fmt.string ppf "<builtin>"
  else Fmt.pf ppf "%s:%d:%d" t.file t.start_pos.line t.start_pos.col

let to_string t = Fmt.str "%a" pp t
