(* Dense mutable bitsets for dataflow IN/OUT vectors. *)

type t = { bits : Bytes.t; size : int }

let create size = { bits = Bytes.make ((size + 7) / 8) '\000'; size }

let copy t = { bits = Bytes.copy t.bits; size = t.size }

let mem t i =
  assert (i >= 0 && i < t.size);
  Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  assert (i >= 0 && i < t.size);
  let byte = i lsr 3 in
  Bytes.set t.bits byte
    (Char.chr (Char.code (Bytes.get t.bits byte) lor (1 lsl (i land 7))))

let remove t i =
  assert (i >= 0 && i < t.size);
  let byte = i lsr 3 in
  Bytes.set t.bits byte
    (Char.chr (Char.code (Bytes.get t.bits byte) land lnot (1 lsl (i land 7)) land 0xFF))

let equal a b = Bytes.equal a.bits b.bits

(* a := a ∪ b; returns true if a changed *)
let union_into a b =
  let changed = ref false in
  for i = 0 to Bytes.length a.bits - 1 do
    let old = Char.code (Bytes.get a.bits i) in
    let nw = old lor Char.code (Bytes.get b.bits i) in
    if nw <> old then begin
      changed := true;
      Bytes.set a.bits i (Char.chr nw)
    end
  done;
  !changed

(* a := (a \ kill) ∪ gen *)
let transfer ~gen ~kill a =
  for i = 0 to Bytes.length a.bits - 1 do
    let v =
      Char.code (Bytes.get a.bits i)
      land lnot (Char.code (Bytes.get kill.bits i))
      land 0xFF
      lor Char.code (Bytes.get gen.bits i)
    in
    Bytes.set a.bits i (Char.chr v)
  done

let iter f t =
  for i = 0 to t.size - 1 do
    if mem t i then f i
  done

let fold f t acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let cardinal t = fold (fun _ n -> n + 1) t 0

let is_empty t =
  let rec go i =
    i >= Bytes.length t.bits || (Bytes.get t.bits i = '\000' && go (i + 1))
  in
  go 0
