(* Fresh-name and fresh-id generation.  Each [t] is an independent counter
   so distinct functions or passes can number their temporaries densely. *)

type t = { mutable next : int }

let create ?(start = 0) () = { next = start }

let fresh t =
  let n = t.next in
  t.next <- n + 1;
  n

let peek t = t.next

let advance_past t n = if n >= t.next then t.next <- n + 1

let fresh_name t prefix = Printf.sprintf "%s%d" prefix (fresh t)
