(** Fresh-name and fresh-id generation.  Each [t] is an independent
    counter, so distinct functions or passes can number their temporaries
    densely. *)

type t

val create : ?start:int -> unit -> t

(** The next id; increments the counter. *)
val fresh : t -> int

(** The id [fresh] would return, without consuming it. *)
val peek : t -> int

(** Ensure future ids are greater than [n] (used when importing
    serialized entities that carry their own ids). *)
val advance_past : t -> int -> unit

(** [fresh_name t "p"] is ["p<n>"] for a fresh [n]. *)
val fresh_name : t -> string -> string
