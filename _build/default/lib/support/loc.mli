(** Source locations for diagnostics. *)

type pos = { line : int;  (** 1-based *) col : int  (** 1-based *) }

(** A half-open span within one file. *)
type t = { file : string; start_pos : pos; end_pos : pos }

(** Location of compiler-generated constructs. *)
val dummy : t

val dummy_pos : pos
val make : file:string -> start_pos:pos -> end_pos:pos -> t
val is_dummy : t -> bool

(** [merge a b] spans from [a]'s start to [b]'s end; dummies are absorbed. *)
val merge : t -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
