(* A minimal s-expression reader/writer used for the pointer-free procedure
   catalogs (paper §7: the IL must be saved "in an easily accessible form").
   Atoms are printed bare when possible and quoted otherwise. *)

type t =
  | Atom of string
  | List of t list

let atom s = Atom s
let list l = List l
let int n = Atom (string_of_int n)
let float f = Atom (Printf.sprintf "%h" f)
let bool b = Atom (if b then "true" else "false")

exception Parse_error of string

let needs_quoting s =
  s = ""
  || String.exists
       (fun c ->
         match c with
         | ' ' | '\t' | '\n' | '(' | ')' | '"' | '\\' | ';' -> true
         | _ -> false)
       s

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec pp ppf = function
  | Atom s -> Fmt.string ppf (if needs_quoting s then escape s else s)
  | List l -> Fmt.pf ppf "(@[<hov 1>%a@])" Fmt.(list ~sep:sp pp) l

let to_string t = Fmt.str "%a" pp t

(* Parsing *)

type parser_state = { input : string; mutable pos : int }

let peek_char st =
  if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek_char st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | Some ';' ->
      (* comment to end of line *)
      let rec skip () =
        match peek_char st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            skip ()
      in
      skip ();
      skip_ws st
  | Some _ | None -> ()

let parse_quoted st =
  advance st;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char st with
    | None -> raise (Parse_error "unterminated string")
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek_char st with
        | Some 'n' ->
            Buffer.add_char buf '\n';
            advance st;
            go ()
        | Some 't' ->
            Buffer.add_char buf '\t';
            advance st;
            go ()
        | Some c ->
            Buffer.add_char buf c;
            advance st;
            go ()
        | None -> raise (Parse_error "unterminated escape"))
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Atom (Buffer.contents buf)

let parse_bare st =
  let start = st.pos in
  let rec go () =
    match peek_char st with
    | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';') | None -> ()
    | Some _ ->
        advance st;
        go ()
  in
  go ();
  Atom (String.sub st.input start (st.pos - start))

let rec parse_one st =
  skip_ws st;
  match peek_char st with
  | None -> raise (Parse_error "unexpected end of input")
  | Some '(' ->
      advance st;
      let items = ref [] in
      let rec go () =
        skip_ws st;
        match peek_char st with
        | Some ')' -> advance st
        | None -> raise (Parse_error "unterminated list")
        | Some _ ->
            items := parse_one st :: !items;
            go ()
      in
      go ();
      List (List.rev !items)
  | Some ')' -> raise (Parse_error "unexpected ')'")
  | Some '"' -> parse_quoted st
  | Some _ -> parse_bare st

let of_string s =
  let st = { input = s; pos = 0 } in
  let t = parse_one st in
  skip_ws st;
  (match peek_char st with
  | None -> ()
  | Some _ -> raise (Parse_error "trailing garbage"));
  t

let of_string_many s =
  let st = { input = s; pos = 0 } in
  let rec go acc =
    skip_ws st;
    match peek_char st with
    | None -> List.rev acc
    | Some _ -> go (parse_one st :: acc)
  in
  go []

(* Accessors used by decoders. *)

let as_atom = function
  | Atom s -> s
  | List _ -> raise (Parse_error "expected atom")

let as_list = function
  | List l -> l
  | Atom a -> raise (Parse_error ("expected list, got atom " ^ a))

let as_int t =
  let s = as_atom t in
  match int_of_string_opt s with
  | Some n -> n
  | None -> raise (Parse_error ("expected int, got " ^ s))

let as_float t =
  let s = as_atom t in
  match float_of_string_opt s with
  | Some f -> f
  | None -> raise (Parse_error ("expected float, got " ^ s))

let as_bool t =
  match as_atom t with
  | "true" -> true
  | "false" -> false
  | s -> raise (Parse_error ("expected bool, got " ^ s))
