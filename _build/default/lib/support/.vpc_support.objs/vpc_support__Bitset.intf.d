lib/support/bitset.mli:
