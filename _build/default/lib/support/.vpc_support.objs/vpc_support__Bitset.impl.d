lib/support/bitset.ml: Bytes Char List
