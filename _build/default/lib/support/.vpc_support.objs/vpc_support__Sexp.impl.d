lib/support/sexp.ml: Buffer Fmt List Printf String
