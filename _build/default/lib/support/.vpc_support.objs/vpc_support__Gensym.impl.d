lib/support/gensym.ml: Printf
