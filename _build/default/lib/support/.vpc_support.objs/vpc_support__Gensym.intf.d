lib/support/gensym.mli:
