lib/support/sexp.mli: Format
