(** Dense mutable bitsets for dataflow IN/OUT vectors. *)

type t

(** [create n]: an empty set over the universe [0 .. n-1]. *)
val create : int -> t

val copy : t -> t
val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val equal : t -> t -> bool

(** [union_into a b]: [a := a ∪ b]; returns [true] if [a] changed. *)
val union_into : t -> t -> bool

(** [transfer ~gen ~kill a]: [a := (a \ kill) ∪ gen], the dataflow
    transfer function. *)
val transfer : gen:t -> kill:t -> t -> unit

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
val cardinal : t -> int
val is_empty : t -> bool
