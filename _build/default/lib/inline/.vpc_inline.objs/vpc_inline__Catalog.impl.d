lib/inline/catalog.ml: Clone Func Hashtbl List Prog Sexp Var Vpc_il Vpc_support
