lib/inline/inline.ml: Builder Clone Expr Func Hashtbl List Printf Prog Stmt Ty Var Vpc_il
