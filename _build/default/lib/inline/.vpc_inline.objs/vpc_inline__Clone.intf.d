lib/inline/clone.mli: Expr Hashtbl Stmt Vpc_il Vpc_support
