lib/inline/clone.ml: Expr Hashtbl List Option Stmt Vpc_il Vpc_support
