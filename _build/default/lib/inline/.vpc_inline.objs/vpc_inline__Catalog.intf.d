lib/inline/catalog.mli: Prog Vpc_il
