lib/inline/inline.mli: Expr Func Prog Stmt Vpc_il
