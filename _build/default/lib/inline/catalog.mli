(** Procedure catalogs (paper §7): "math libraries can be 'compiled' into
    databases and used as a base for inlining, much as include
    directories are used as a source for header files."  A catalog is a
    serialized program in the pointer-free sexp form; importing merges it
    into a target program, remapping ids, with globals unified by name so
    a library's statics keep one storage location. *)

open Vpc_il

val save : Prog.t -> string -> unit
val load : string -> Prog.t
val of_string : string -> Prog.t
val to_string : Prog.t -> string

(** Merge [src] into [into].  Functions already defined in [into] win. *)
val import : into:Prog.t -> Prog.t -> unit
