(** Statement-tree cloning with variable and label renaming — the engine
    under both inlining (§7) and catalog import.  The IL is pointer-free,
    so cloning is a pure id-remapping walk. *)

open Vpc_il

type renaming = {
  var_map : (int, int) Hashtbl.t;        (** old var id → new var id *)
  label_map : (string, string) Hashtbl.t;
  stmt_gen : Vpc_support.Gensym.t;       (** target function's stmt ids *)
}

(** Identity on ids absent from the map (globals stay shared). *)
val map_var : renaming -> int -> int

val map_label : renaming -> string -> string
val clone_expr : renaming -> Expr.t -> Expr.t
val clone_lvalue : renaming -> Stmt.lvalue -> Stmt.lvalue
val clone_stmt : renaming -> Stmt.t -> Stmt.t
val clone_stmts : renaming -> Stmt.t list -> Stmt.t list
