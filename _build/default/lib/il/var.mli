(** IL variables.  Statements and expressions refer to variables by
    integer id only — the IL carries no hard pointers so that procedures
    can be paged and saved into catalogs (paper §7).  Metadata lives in
    per-program / per-function tables keyed by id. *)

type storage =
  | Auto    (** function local *)
  | Param   (** formal parameter *)
  | Static  (** function- or file-scope static *)
  | Global  (** external linkage *)
  | Extern  (** declared here, defined elsewhere *)

type t = {
  id : int;
  name : string;
  ty : Ty.t;
  volatile : bool;
  storage : storage;
  is_temp : bool;  (** compiler-generated temporary *)
}

val make :
  id:int ->
  name:string ->
  ty:Ty.t ->
  ?volatile:bool ->
  ?storage:storage ->
  ?is_temp:bool ->
  unit ->
  t

(** Arrays and structs are memory objects: their value is never held in a
    register; all accesses go through their address. *)
val is_memory_object : t -> bool

(** Static, global, or extern: storage that outlives the activation. *)
val is_global : t -> bool

val pp : Format.formatter -> t -> unit
val storage_to_string : storage -> string
val storage_of_string : string -> storage
val to_sexp : t -> Vpc_support.Sexp.t
val of_sexp : Vpc_support.Sexp.t -> t
