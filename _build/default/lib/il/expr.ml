(* IL expressions are *pure*: the front end forces every operation that
   changes a memory location to be an explicit statement (paper §4), so an
   expression may read variables and memory but never write.  Pointer
   arithmetic is explicit in bytes — the front end scales by sizeof, which
   is exactly the `a = temp_1 + 4` form the paper shows. *)

open Vpc_support

type binop =
  | Add | Sub | Mul | Div | Rem
  | Shl | Shr | Band | Bor | Bxor
  | Eq | Ne | Lt | Le | Gt | Ge

type unop = Neg | Lognot | Bitnot

type t = { desc : desc; ty : Ty.t }

and desc =
  | Const_int of int
  | Const_float of float
  | Var of int          (* read of a scalar variable *)
  | Load of t           (* *p where p : Ptr ty *)
  | Addr_of of int      (* &v *)
  | Binop of binop * t * t
  | Unop of unop * t
  | Cast of Ty.t * t

(* Constructors *)

let mk desc ty = { desc; ty }
let int_const n = mk (Const_int n) Ty.Int
let char_const c = mk (Const_int (Char.code c)) Ty.Char
let float_const ?(ty = Ty.Double) f = mk (Const_float f) ty
let var (v : Var.t) = mk (Var v.id) v.ty
let var_id id ty = mk (Var id) ty
(* &v.  For an array variable the result is the address of its first byte
   typed as a pointer to the innermost element — the decayed form the
   lowering's byte arithmetic wants for base addresses (multi-dimensional
   arrays decay all the way down, so loads through the base are always
   scalar-typed). *)
let addr_of (v : Var.t) =
  let rec pointee = function
    | Ty.Array (elt, _) -> pointee elt
    | t -> t
  in
  mk (Addr_of v.id) (Ty.Ptr (pointee v.ty))

let load ptr =
  match ptr.ty with
  | Ty.Ptr elt -> mk (Load ptr) elt
  | _ -> Diag.internal "Expr.load: operand is not a pointer"

let binop op a b ty = mk (Binop (op, a, b)) ty
let unop op a ty = mk (Unop (op, a)) ty
let cast ty a = if Ty.equal ty a.ty then a else mk (Cast (ty, a)) ty

let add a b = binop Add a b a.ty
let sub a b = binop Sub a b a.ty
let mul a b = binop Mul a b a.ty

let is_zero e =
  match e.desc with
  | Const_int 0 -> true
  | Const_float f -> f = 0.0
  | _ -> false

let is_const e =
  match e.desc with Const_int _ | Const_float _ -> true | _ -> false

let const_int_val e = match e.desc with Const_int n -> Some n | _ -> None

(* Structural equality (types are ignored for Var/Addr_of nodes, ids decide). *)
let rec equal a b =
  match a.desc, b.desc with
  | Const_int x, Const_int y -> x = y
  | Const_float x, Const_float y -> x = y && Ty.equal a.ty b.ty
  | Var x, Var y -> x = y
  | Addr_of x, Addr_of y -> x = y
  | Load x, Load y -> equal x y
  | Binop (o1, a1, b1), Binop (o2, a2, b2) -> o1 = o2 && equal a1 a2 && equal b1 b2
  | Unop (o1, a1), Unop (o2, a2) -> o1 = o2 && equal a1 a2
  | Cast (t1, a1), Cast (t2, a2) -> Ty.equal t1 t2 && equal a1 a2
  | ( ( Const_int _ | Const_float _ | Var _ | Addr_of _ | Load _ | Binop _
      | Unop _ | Cast _ ),
      _ ) ->
      false

(* Variables read by an expression (does not include Addr_of: taking an
   address is not a read). *)
let rec vars_read acc e =
  match e.desc with
  | Const_int _ | Const_float _ | Addr_of _ -> acc
  | Var id -> id :: acc
  | Load p -> vars_read acc p
  | Binop (_, a, b) -> vars_read (vars_read acc a) b
  | Unop (_, a) | Cast (_, a) -> vars_read acc a

let read_vars e = vars_read [] e

(* Variables whose address is taken somewhere in the expression. *)
let rec vars_addressed acc e =
  match e.desc with
  | Const_int _ | Const_float _ | Var _ -> acc
  | Addr_of id -> id :: acc
  | Load p -> vars_addressed acc p
  | Binop (_, a, b) -> vars_addressed (vars_addressed acc a) b
  | Unop (_, a) | Cast (_, a) -> vars_addressed acc a

let rec contains_load e =
  match e.desc with
  | Load _ -> true
  | Const_int _ | Const_float _ | Var _ | Addr_of _ -> false
  | Binop (_, a, b) -> contains_load a || contains_load b
  | Unop (_, a) | Cast (_, a) -> contains_load a

(* Map over sub-expressions, bottom-up. *)
let rec map f e =
  let e' =
    match e.desc with
    | Const_int _ | Const_float _ | Var _ | Addr_of _ -> e
    | Load p -> { e with desc = Load (map f p) }
    | Binop (op, a, b) -> { e with desc = Binop (op, map f a, map f b) }
    | Unop (op, a) -> { e with desc = Unop (op, map f a) }
    | Cast (t, a) -> { e with desc = Cast (t, map f a) }
  in
  f e'

let rec iter f e =
  f e;
  match e.desc with
  | Const_int _ | Const_float _ | Var _ | Addr_of _ -> ()
  | Load p -> iter f p
  | Binop (_, a, b) ->
      iter f a;
      iter f b
  | Unop (_, a) | Cast (_, a) -> iter f a

(* Substitute reads of variable [id] by expression [by]. *)
let subst_var id by e =
  map (fun e -> match e.desc with Var v when v = id -> cast e.ty by | _ -> e) e

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | Shl -> "<<" | Shr -> ">>" | Band -> "&" | Bor -> "|" | Bxor -> "^"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let unop_to_string = function Neg -> "-" | Lognot -> "!" | Bitnot -> "~"

let binop_of_string = function
  | "+" -> Add | "-" -> Sub | "*" -> Mul | "/" -> Div | "%" -> Rem
  | "<<" -> Shl | ">>" -> Shr | "&" -> Band | "|" -> Bor | "^" -> Bxor
  | "==" -> Eq | "!=" -> Ne | "<" -> Lt | "<=" -> Le | ">" -> Gt | ">=" -> Ge
  | s -> raise (Sexp.Parse_error ("unknown binop " ^ s))

let unop_of_string = function
  | "-" -> Neg
  | "!" -> Lognot
  | "~" -> Bitnot
  | s -> raise (Sexp.Parse_error ("unknown unop " ^ s))

let rec to_sexp e =
  let open Sexp in
  match e.desc with
  | Const_int n -> list [ atom "ci"; int n; Ty.to_sexp e.ty ]
  | Const_float f -> list [ atom "cf"; float f; Ty.to_sexp e.ty ]
  | Var id -> list [ atom "v"; int id; Ty.to_sexp e.ty ]
  | Addr_of id -> list [ atom "addr"; int id; Ty.to_sexp e.ty ]
  | Load p -> list [ atom "load"; to_sexp p; Ty.to_sexp e.ty ]
  | Binop (op, a, b) ->
      list [ atom "b"; atom (binop_to_string op); to_sexp a; to_sexp b; Ty.to_sexp e.ty ]
  | Unop (op, a) ->
      list [ atom "u"; atom (unop_to_string op); to_sexp a; Ty.to_sexp e.ty ]
  | Cast (t, a) -> list [ atom "cast"; Ty.to_sexp t; to_sexp a ]

let rec of_sexp s =
  let open Sexp in
  match as_list s with
  | [ Atom "ci"; n; ty ] -> mk (Const_int (as_int n)) (Ty.of_sexp ty)
  | [ Atom "cf"; f; ty ] -> mk (Const_float (as_float f)) (Ty.of_sexp ty)
  | [ Atom "v"; id; ty ] -> mk (Var (as_int id)) (Ty.of_sexp ty)
  | [ Atom "addr"; id; ty ] -> mk (Addr_of (as_int id)) (Ty.of_sexp ty)
  | [ Atom "load"; p; ty ] -> mk (Load (of_sexp p)) (Ty.of_sexp ty)
  | [ Atom "b"; Atom op; a; b; ty ] ->
      mk (Binop (binop_of_string op, of_sexp a, of_sexp b)) (Ty.of_sexp ty)
  | [ Atom "u"; Atom op; a; ty ] ->
      mk (Unop (unop_of_string op, of_sexp a)) (Ty.of_sexp ty)
  | [ Atom "cast"; t; a ] ->
      let t = Ty.of_sexp t in
      mk (Cast (t, of_sexp a)) t
  | _ -> raise (Parse_error "bad expr sexp")
