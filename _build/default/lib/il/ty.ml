(* C types as carried through the IL.  Struct layout lives in a
   [struct_env] held by the program so that types themselves stay small,
   comparable, and serializable (the IL must be pointer-free, paper §7). *)

open Vpc_support

type t =
  | Void
  | Char
  | Int
  | Float
  | Double
  | Ptr of t
  | Array of t * int option
  | Struct of string
  | Func of t * t list

type struct_def = {
  tag : string;
  fields : (string * t) list;
}

type struct_env = (string, struct_def) Hashtbl.t

let is_integer = function Char | Int -> true | _ -> false
let is_float = function Float | Double -> true | _ -> false
let is_arith t = is_integer t || is_float t
let is_pointer = function Ptr _ -> true | _ -> false
let is_scalar t = is_arith t || is_pointer t

(* Decay of array-of-T to pointer-to-T, as in C expression contexts. *)
let decay = function
  | Array (elt, _) -> Ptr elt
  | Func _ as f -> Ptr f
  | t -> t

let pointee = function
  | Ptr t -> t
  | Array (t, _) -> t
  | _ -> Diag.internal "Ty.pointee: not a pointer type"

let rec sizeof env = function
  | Void -> Diag.internal "sizeof void"
  | Char -> 1
  | Int -> 4
  | Float -> 4
  | Double -> 8
  | Ptr _ -> 4
  | Array (elt, Some n) -> n * sizeof env elt
  | Array (_, None) -> Diag.internal "sizeof of unsized array"
  | Struct tag -> (
      match Hashtbl.find_opt env tag with
      | None -> Diag.internal "sizeof of undefined struct %s" tag
      | Some def ->
          let size =
            List.fold_left
              (fun off (_, fty) ->
                let a = alignof env fty in
                let off = (off + a - 1) / a * a in
                off + sizeof env fty)
              0 def.fields
          in
          let a = alignof env (Struct tag) in
          (size + a - 1) / a * a)
  | Func _ -> Diag.internal "sizeof of function type"

and alignof env = function
  | Void -> 1
  | Char -> 1
  | Int | Float | Ptr _ -> 4
  | Double -> 8
  | Array (elt, _) -> alignof env elt
  | Struct tag -> (
      match Hashtbl.find_opt env tag with
      | None -> Diag.internal "alignof of undefined struct %s" tag
      | Some def ->
          List.fold_left (fun a (_, fty) -> max a (alignof env fty)) 1 def.fields)
  | Func _ -> 4

(* Byte offset of [field] within struct [tag]. *)
let field_offset env tag field =
  match Hashtbl.find_opt env tag with
  | None -> Diag.internal "field_offset: undefined struct %s" tag
  | Some def ->
      let rec go off = function
        | [] -> Diag.internal "field_offset: no field %s in %s" field tag
        | (name, fty) :: rest ->
            let a = alignof env fty in
            let off = (off + a - 1) / a * a in
            if name = field then (off, fty) else go (off + sizeof env fty) rest
      in
      go 0 def.fields

let rec equal a b =
  match a, b with
  | Void, Void | Char, Char | Int, Int | Float, Float | Double, Double -> true
  | Ptr a, Ptr b -> equal a b
  | Array (a, na), Array (b, nb) -> equal a b && na = nb
  | Struct ta, Struct tb -> ta = tb
  | Func (ra, aa), Func (rb, ab) ->
      equal ra rb
      && List.length aa = List.length ab
      && List.for_all2 equal aa ab
  | (Void | Char | Int | Float | Double | Ptr _ | Array _ | Struct _ | Func _), _
    -> false

(* The usual arithmetic conversions, simplified to our four scalar
   arithmetic types. *)
let common_arith a b =
  match a, b with
  | Double, _ | _, Double -> Double
  | Float, _ | _, Float -> Float
  | _ -> Int

let rec pp ppf = function
  | Void -> Fmt.string ppf "void"
  | Char -> Fmt.string ppf "char"
  | Int -> Fmt.string ppf "int"
  | Float -> Fmt.string ppf "float"
  | Double -> Fmt.string ppf "double"
  | Ptr t -> Fmt.pf ppf "%a*" pp t
  | Array (t, Some n) -> Fmt.pf ppf "%a[%d]" pp t n
  | Array (t, None) -> Fmt.pf ppf "%a[]" pp t
  | Struct tag -> Fmt.pf ppf "struct %s" tag
  | Func (ret, args) ->
      Fmt.pf ppf "%a(%a)" pp ret Fmt.(list ~sep:comma pp) args

let to_string t = Fmt.str "%a" pp t

(* Serialization *)

let rec to_sexp : t -> Sexp.t = function
  | Void -> Sexp.atom "void"
  | Char -> Sexp.atom "char"
  | Int -> Sexp.atom "int"
  | Float -> Sexp.atom "float"
  | Double -> Sexp.atom "double"
  | Ptr t -> Sexp.list [ Sexp.atom "ptr"; to_sexp t ]
  | Array (t, Some n) -> Sexp.list [ Sexp.atom "array"; to_sexp t; Sexp.int n ]
  | Array (t, None) -> Sexp.list [ Sexp.atom "array"; to_sexp t ]
  | Struct tag -> Sexp.list [ Sexp.atom "struct"; Sexp.atom tag ]
  | Func (ret, args) ->
      Sexp.list (Sexp.atom "func" :: to_sexp ret :: List.map to_sexp args)

let rec of_sexp (s : Sexp.t) : t =
  match s with
  | Sexp.Atom "void" -> Void
  | Sexp.Atom "char" -> Char
  | Sexp.Atom "int" -> Int
  | Sexp.Atom "float" -> Float
  | Sexp.Atom "double" -> Double
  | Sexp.Atom other -> raise (Sexp.Parse_error ("unknown type " ^ other))
  | Sexp.List [ Sexp.Atom "ptr"; t ] -> Ptr (of_sexp t)
  | Sexp.List [ Sexp.Atom "array"; t; n ] -> Array (of_sexp t, Some (Sexp.as_int n))
  | Sexp.List [ Sexp.Atom "array"; t ] -> Array (of_sexp t, None)
  | Sexp.List [ Sexp.Atom "struct"; tag ] -> Struct (Sexp.as_atom tag)
  | Sexp.List (Sexp.Atom "func" :: ret :: args) ->
      Func (of_sexp ret, List.map of_sexp args)
  | Sexp.List _ -> raise (Sexp.Parse_error "bad type sexp")
