(** IL expressions are {e pure}: the front end forces every operation that
    changes a memory location to be an explicit statement (paper §4), so
    an expression may read variables and memory but never write.  Pointer
    arithmetic is explicit in bytes — exactly the [a = temp_1 + 4] form
    the paper's listings show. *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | Shl | Shr | Band | Bor | Bxor
  | Eq | Ne | Lt | Le | Gt | Ge

type unop = Neg | Lognot | Bitnot

type t = { desc : desc; ty : Ty.t }

and desc =
  | Const_int of int
  | Const_float of float
  | Var of int          (** read of a scalar variable, by id *)
  | Load of t           (** [*p] where [p : Ptr ty] *)
  | Addr_of of int      (** [&v]; for arrays, the decayed base address *)
  | Binop of binop * t * t
  | Unop of unop * t
  | Cast of Ty.t * t

(** {1 Constructors} *)

val mk : desc -> Ty.t -> t
val int_const : int -> t
val char_const : char -> t
val float_const : ?ty:Ty.t -> float -> t
val var : Var.t -> t
val var_id : int -> Ty.t -> t

(** [&v], typed as pointer to the innermost element for arrays. *)
val addr_of : Var.t -> t

(** [load p]: [*p]; internal error if [p] is not pointer-typed. *)
val load : t -> t

val binop : binop -> t -> t -> Ty.t -> t
val unop : unop -> t -> Ty.t -> t

(** Identity when the types already match. *)
val cast : Ty.t -> t -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** {1 Predicates and queries} *)

val is_zero : t -> bool
val is_const : t -> bool
val const_int_val : t -> int option

(** Structural equality (variable identity decides for [Var]/[Addr_of]). *)
val equal : t -> t -> bool

(** Variables read (does not include [Addr_of]: taking an address is not
    a read). *)
val read_vars : t -> int list

val vars_read : int list -> t -> int list
val vars_addressed : int list -> t -> int list
val contains_load : t -> bool

(** {1 Traversal} *)

(** Bottom-up rewrite. *)
val map : (t -> t) -> t -> t

val iter : (t -> unit) -> t -> unit

(** Replace reads of variable [id] by [by] (cast to each use's type). *)
val subst_var : int -> t -> t -> t

(** {1 Names and serialization} *)

val binop_to_string : binop -> string
val unop_to_string : unop -> string
val binop_of_string : string -> binop
val unop_of_string : string -> unop
val to_sexp : t -> Vpc_support.Sexp.t
val of_sexp : Vpc_support.Sexp.t -> t
