(** An executing interpreter for the IL — the reference semantics of the
    compiler.  Every optimization pass is differential-tested by running
    programs before and after it, and the Titan simulator is checked
    against it.

    Memory is byte-addressed; scalars whose address is never taken live
    in per-frame registers; pointers are integer addresses. *)

type value = V_int of int | V_float of float

exception Runtime_error of string

(** Raised when [max_steps] is exceeded. *)
exception Timeout

val as_int : value -> int
val as_float : value -> float
val pp_value : Format.formatter -> value -> unit

type state

type result = {
  return_value : value;
  stdout_text : string;   (** everything printf/puts/putchar produced *)
  fp_ops : int;           (** floating-point operations executed *)
  steps_executed : int;
}

(** Run [entry] (default ["main"]).  [on_volatile_read] models a device:
    consulted on every read of a volatile variable; returning [Some v]
    overrides the stored value. *)
val run :
  ?max_steps:int ->
  ?on_volatile_read:(Var.t -> value option) ->
  ?entry:string ->
  ?args:value list ->
  Prog.t ->
  result

(** Like {!run} but also returns the machine state for post-mortem reads
    (see {!global_array_values}). *)
val run_with_state :
  ?max_steps:int ->
  ?on_volatile_read:(Var.t -> value option) ->
  ?entry:string ->
  ?args:value list ->
  Prog.t ->
  state * result

(** The final contents of global array [name], first [n] elements. *)
val global_array_values : state -> Prog.t -> string -> int -> value list
