(** Pretty-printing of the IL in a C-like notation.  Counted loops print
    in the paper's [do fortran] / [do parallel] style and vector
    statements in its colon notation, so golden tests compare directly
    against the paper's listings. *)

type env = { prog : Prog.t; func : Func.t option }

val var_name : env -> int -> string
val pp_expr : env -> ?prec:int -> Format.formatter -> Expr.t -> unit
val pp_lvalue : env -> Format.formatter -> Stmt.lvalue -> unit
val pp_section : env -> Format.formatter -> Stmt.section -> unit
val pp_vexpr : env -> ?prec:int -> Format.formatter -> Stmt.vexpr -> unit
val pp_stmt : env -> indent:int -> Format.formatter -> Stmt.t -> unit
val pp_stmts : env -> indent:int -> Format.formatter -> Stmt.t list -> unit
val pp_func : Prog.t -> Format.formatter -> Func.t -> unit
val func_to_string : Prog.t -> Func.t -> string
val stmts_to_string : Prog.t -> Func.t -> Stmt.t list -> string
val pp_prog : Format.formatter -> Prog.t -> unit
val prog_to_string : Prog.t -> string
