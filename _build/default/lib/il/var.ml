(* IL variables.  Statements and expressions refer to variables by integer
   id only — the IL carries no hard pointers so that procedures can be
   paged and saved into catalogs (paper §7).  Metadata lives in per-program
   / per-function tables keyed by id. *)

open Vpc_support

type storage =
  | Auto    (* function local *)
  | Param   (* formal parameter *)
  | Static  (* function- or file-scope static *)
  | Global  (* external linkage *)
  | Extern  (* declared here, defined elsewhere *)

type t = {
  id : int;
  name : string;
  ty : Ty.t;
  volatile : bool;
  storage : storage;
  is_temp : bool;  (* compiler-generated temporary *)
}

let make ~id ~name ~ty ?(volatile = false) ?(storage = Auto) ?(is_temp = false)
    () =
  { id; name; ty; volatile; storage; is_temp }

(* A variable of aggregate type is a memory object: its value is never held
   in a register and all accesses go through its address. *)
let is_memory_object v =
  match v.ty with Array _ | Struct _ -> true | Void | Char | Int | Float | Double | Ptr _ | Func _ -> false

let is_global v =
  match v.storage with Global | Extern | Static -> true | Auto | Param -> false

let pp ppf v = Fmt.pf ppf "%s#%d" v.name v.id

let storage_to_string = function
  | Auto -> "auto"
  | Param -> "param"
  | Static -> "static"
  | Global -> "global"
  | Extern -> "extern"

let storage_of_string = function
  | "auto" -> Auto
  | "param" -> Param
  | "static" -> Static
  | "global" -> Global
  | "extern" -> Extern
  | s -> raise (Sexp.Parse_error ("unknown storage " ^ s))

let to_sexp v =
  Sexp.list
    [
      Sexp.int v.id;
      Sexp.atom v.name;
      Ty.to_sexp v.ty;
      Sexp.atom (storage_to_string v.storage);
      Sexp.bool v.volatile;
      Sexp.bool v.is_temp;
    ]

let of_sexp s =
  match Sexp.as_list s with
  | [ id; name; ty; storage; volatile; is_temp ] ->
      {
        id = Sexp.as_int id;
        name = Sexp.as_atom name;
        ty = Ty.of_sexp ty;
        storage = storage_of_string (Sexp.as_atom storage);
        volatile = Sexp.as_bool volatile;
        is_temp = Sexp.as_bool is_temp;
      }
  | _ -> raise (Sexp.Parse_error "bad var sexp")
