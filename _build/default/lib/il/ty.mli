(** C types as carried through the IL.  Struct layouts live in a
    {!struct_env} held by the program, keeping types small and
    serializable (the IL is pointer-free, paper §7). *)

type t =
  | Void
  | Char    (** signed, 1 byte *)
  | Int     (** 32-bit signed; long/short/unsigned collapse here *)
  | Float   (** 32-bit *)
  | Double  (** 64-bit *)
  | Ptr of t
  | Array of t * int option  (** element type, optional element count *)
  | Struct of string         (** by tag; layout in the {!struct_env} *)
  | Func of t * t list       (** return type, parameter types *)

type struct_def = { tag : string; fields : (string * t) list }
type struct_env = (string, struct_def) Hashtbl.t

val is_integer : t -> bool
val is_float : t -> bool
val is_arith : t -> bool
val is_pointer : t -> bool
val is_scalar : t -> bool

(** Array-of-T decays to pointer-to-T; functions to function pointers. *)
val decay : t -> t

(** Element type behind a pointer or array; internal error otherwise. *)
val pointee : t -> t

val sizeof : struct_env -> t -> int
val alignof : struct_env -> t -> int

(** [field_offset env tag field] is the byte offset and type of [field]
    within [struct tag]. *)
val field_offset : struct_env -> string -> string -> int * t

val equal : t -> t -> bool

(** The usual arithmetic conversions over our scalar types. *)
val common_arith : t -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val to_sexp : t -> Vpc_support.Sexp.t
val of_sexp : Vpc_support.Sexp.t -> t
