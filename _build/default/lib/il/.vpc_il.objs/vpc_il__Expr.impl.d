lib/il/expr.ml: Char Diag Sexp Ty Var Vpc_support
