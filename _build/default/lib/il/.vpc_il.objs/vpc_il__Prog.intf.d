lib/il/prog.mli: Expr Func Hashtbl Ty Var Vpc_support
