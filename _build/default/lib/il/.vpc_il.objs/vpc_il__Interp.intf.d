lib/il/interp.mli: Format Prog Var
