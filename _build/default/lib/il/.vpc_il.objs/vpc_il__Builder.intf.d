lib/il/builder.mli: Expr Func Prog Stmt Ty Var Vpc_support
