lib/il/ty.ml: Diag Fmt Hashtbl List Sexp Vpc_support
