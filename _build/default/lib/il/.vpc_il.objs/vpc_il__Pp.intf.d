lib/il/pp.mli: Expr Format Func Prog Stmt
