lib/il/prog.ml: Diag Expr Func Gensym Hashtbl List Option Sexp Ty Var Vpc_support
