lib/il/pp.ml: Expr Float Fmt Func List Printf Prog Stmt String Ty Var
