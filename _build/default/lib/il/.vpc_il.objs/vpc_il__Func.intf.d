lib/il/func.mli: Hashtbl Stmt Ty Var Vpc_support
