lib/il/var.ml: Fmt Sexp Ty Vpc_support
