lib/il/stmt.mli: Expr Ty Vpc_support
