lib/il/ty.mli: Format Hashtbl Vpc_support
