lib/il/var.mli: Format Ty Vpc_support
