lib/il/interp.ml: Array Buffer Bytes Char Expr Float Fmt Format Func Hashtbl Int32 Int64 List Printf Prog Scanf Stmt String Ty Var
