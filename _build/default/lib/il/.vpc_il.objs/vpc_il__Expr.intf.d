lib/il/expr.mli: Ty Var Vpc_support
