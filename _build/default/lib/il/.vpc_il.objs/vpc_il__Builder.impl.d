lib/il/builder.ml: Expr Func Printf Prog Stmt Var
