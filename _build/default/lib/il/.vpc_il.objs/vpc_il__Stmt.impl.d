lib/il/stmt.ml: Expr List Loc Option Sexp Ty Vpc_support
