lib/il/func.ml: Diag Expr Gensym Hashtbl List Loc Sexp Stmt Ty Var Vpc_support
