(** Findings of the static checkers: one record per broken invariant,
    carrying enough context (rule name, function, statement id, source
    location) to turn into a {!Vpc_support.Diag.t} naming the offending
    pass. *)

open Vpc_support

type violation = {
  rule : string;     (** stable rule identifier, e.g. ["dup-stmt-id"] *)
  func : string;     (** enclosing function name *)
  stmt : int option; (** offending statement id, when one exists *)
  loc : Loc.t;       (** source location (dummy for synthesized IL) *)
  message : string;
}

val v :
  rule:string -> func:string -> ?stmt:int -> ?loc:Loc.t -> string -> violation

val pp : Format.formatter -> violation -> unit
val to_string : violation -> string
