lib/check/report.mli: Format Loc Vpc_support
