lib/check/races.ml: Alias Array Expr Format Func Graph Hashtbl List Option Printf Prog Report Stmt Subscript Test Var Vpc_analysis Vpc_dependence Vpc_il
