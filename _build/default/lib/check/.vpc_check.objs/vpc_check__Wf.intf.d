lib/check/wf.mli: Func Prog Report Vpc_il
