lib/check/races.mli: Func Prog Report Vpc_il
