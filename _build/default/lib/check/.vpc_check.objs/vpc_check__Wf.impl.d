lib/check/wf.ml: Expr Format Func Hashtbl List Printf Prog Report Stmt Ty Var Vpc_analysis Vpc_il
