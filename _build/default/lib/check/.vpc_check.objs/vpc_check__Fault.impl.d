lib/check/fault.ml: Expr Func List Prog Stmt Ty Vpc_il
