lib/check/verify.mli: Func Prog Report Vpc_il Vpc_support
