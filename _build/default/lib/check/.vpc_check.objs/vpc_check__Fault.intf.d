lib/check/fault.mli: Prog Vpc_il
