lib/check/report.ml: Format Loc Vpc_support
