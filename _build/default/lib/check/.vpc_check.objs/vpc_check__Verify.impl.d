lib/check/verify.ml: Diag List Printf Prog Races Report Vpc_il Vpc_support Wf
