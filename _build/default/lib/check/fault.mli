(** Deterministic fault injection for exercising the verifier and the
    differential checker end to end: each kind corrupts the first
    applicable site in the program the way a buggy pass would.

    - [Dup_stmt_id]: clone an existing statement id onto another statement.
    - [Unbound_var]: retarget an assignment at a variable id no table binds.
    - [Impure_bound]: make a DO loop's [hi] bound read its own index.
    - [Dangling_goto]: append a [Goto] with no matching label.
    - [Vector_type]: flip a [Vector] statement's element type.
    - [Vector_overlap]: shift a [Vector] destination one element up, so
      the source reads elements the sequential loop had already written.
    - [False_parallel]: mark the first sequential [Do_loop] parallel.
    - [Wrong_const]: add 1 to the first integer constant assignment
      (semantically wrong but structurally well-formed — only the
      differential checker can see it).

    [inject] returns [false] when the program has no applicable site. *)

open Vpc_il

type kind =
  | Dup_stmt_id
  | Unbound_var
  | Impure_bound
  | Dangling_goto
  | Vector_type
  | Vector_overlap
  | False_parallel
  | Wrong_const

val kinds : (string * kind) list
val of_string : string -> kind option
val to_string : kind -> string
val inject : kind -> Prog.t -> bool
