open Vpc_support

type violation = {
  rule : string;
  func : string;
  stmt : int option;
  loc : Loc.t;
  message : string;
}

let v ~rule ~func ?stmt ?(loc = Loc.dummy) message =
  { rule; func; stmt; loc; message }

let pp ppf t =
  Format.fprintf ppf "[%s] %s (function %s%t)" t.rule t.message t.func
    (fun ppf ->
      match t.stmt with
      | Some id -> Format.fprintf ppf ", stmt %d" id
      | None -> ());
  if not (Loc.is_dummy t.loc) then Format.fprintf ppf " at %a" Loc.pp t.loc

let to_string t = Format.asprintf "%a" pp t
