(** Constant folding and algebraic simplification of pure IL expressions,
    shared by constant propagation, induction-variable substitution, and
    the subscript normalizer.  Float arithmetic folds with the same
    32-bit rounding the interpreter and simulator use. *)

open Vpc_il

val wrap32 : int -> int

(** Fold an integer binop; [None] when undefined (division by zero). *)
val fold_int_binop : Expr.binop -> int -> int -> int option

val fold_float_binop :
  Expr.binop -> float -> float -> [ `F of float | `I of int ] option

(** One bottom-up simplification pass: constant folding, x+0 / x*1 /
    x*0-style identities, (x+c1)+c2 reassociation.  Result types are
    preserved. *)
val expr : Expr.t -> Expr.t

(** Is this a "constant" in the propagation sense?  Address constants
    ([&a], [&a + 12]) count — §9 depends on propagating them. *)
val is_propagation_constant : Expr.t -> bool

(** Truth value of a constant condition, if decidable. *)
val const_truth : Expr.t -> bool option

(** Simplify every expression of a statement (shallow). *)
val stmt_exprs_simplify : Stmt.t -> Stmt.t
