lib/analysis/reaching.ml: Array Bitset Cfg Expr Func Hashtbl List Option Prog Stmt Var Vpc_il Vpc_support
