lib/analysis/unreachable.mli: Func Vpc_il
