lib/analysis/simplify.mli: Expr Stmt Vpc_il
