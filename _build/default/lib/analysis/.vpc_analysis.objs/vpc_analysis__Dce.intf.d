lib/analysis/dce.mli: Func Vpc_il
