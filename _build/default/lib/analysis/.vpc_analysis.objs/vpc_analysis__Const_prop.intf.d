lib/analysis/const_prop.mli: Func Prog Vpc_il
