lib/analysis/const_prop.ml: Expr Func Hashtbl List Prog Reaching Simplify Stmt Vpc_il
