lib/analysis/reaching.mli: Expr Func Hashtbl Prog Stmt Vpc_il
