lib/analysis/cfg.mli: Func Hashtbl Stmt Vpc_il
