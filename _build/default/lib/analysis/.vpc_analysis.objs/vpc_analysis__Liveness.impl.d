lib/analysis/liveness.ml: Array Bitset Cfg Expr Func Hashtbl List Stmt Var Vpc_il Vpc_support
