lib/analysis/dce.ml: Func Hashtbl List Liveness Stmt Vpc_il
