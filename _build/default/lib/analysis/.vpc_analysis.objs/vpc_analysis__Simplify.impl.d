lib/analysis/simplify.ml: Expr Int32 Stmt Ty Vpc_il
