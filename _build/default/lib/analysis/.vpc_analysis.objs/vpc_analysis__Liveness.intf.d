lib/analysis/liveness.mli: Func Stmt Vpc_il
