lib/analysis/cfg.ml: Diag Func Hashtbl List Stmt Vpc_il Vpc_support
