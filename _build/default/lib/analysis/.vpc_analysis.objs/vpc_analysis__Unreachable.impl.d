lib/analysis/unreachable.ml: Cfg Func Hashtbl Stmt Vpc_il
