(** Control-flow graph over the structured IL ("the control flow graph
    built for scalar analysis", paper §5.2).  Each leaf statement is a
    node; an [If]/[While]/[Do_loop] statement is the node of its
    condition.  Synthetic [entry_id]/[exit_id] nodes bracket the
    function. *)

open Vpc_il

val entry_id : int
val exit_id : int

type node = {
  stmt : Stmt.t option;  (** [None] for entry/exit *)
  mutable succs : int list;
  mutable preds : int list;
}

type t = {
  nodes : (int, node) Hashtbl.t;
  func : Func.t;
  mutable rpo : int list;  (** reverse postorder from entry *)
}

val build : Func.t -> t
val node : t -> int -> node
val stmt_of : t -> int -> Stmt.t option
val succs : t -> int -> int list
val preds : t -> int -> int list

(** Node ids reachable from entry. *)
val reachable : t -> (int, unit) Hashtbl.t

(** Iterate in reverse postorder (good order for forward dataflow). *)
val iter_rpo : (int -> node -> unit) -> t -> unit

(** All statement ids in a subtree, including the root. *)
val subtree_ids : Stmt.t -> int list

(** Labels defined inside a statement list. *)
val labels_in : Stmt.t list -> (string, unit) Hashtbl.t

(** Does any goto outside [body] target a label inside it?  The §5.2
    "branches are entering the loop" check. *)
val has_branch_into : Func.t -> Stmt.t list -> bool

(** Does [body] branch out (goto to an outside label, or return)? *)
val has_branch_out_of : Stmt.t list -> bool
