(** Unreachable-code elimination (paper §8): the "quick heuristic"
    postpass — statements between an unconditional transfer and the next
    label are dead, and a goto to the immediately following label is
    dropped — plus a full CFG-reachability sweep for the stubborn
    cases. *)

open Vpc_il

type stats = { mutable removed : int }

val new_stats : unit -> stats
val quick_pass : Func.t -> stats -> bool
val cfg_pass : Func.t -> stats -> bool

(** Both passes; [true] if anything was removed. *)
val run : ?stats:stats -> Func.t -> bool
