(** Backward live-variable analysis over the CFG.  Dead-code elimination
    and induction-variable elimination consult live-out sets; unsafe
    variables (address-taken, global, volatile) are treated as live at
    exit. *)

open Vpc_il

type t

val uses_of : Stmt.t -> int list
val def_of : Stmt.t -> int option
val build : Func.t -> t

(** Is [var] live after statement [stmt_id]?  Unsafe variables are always
    live; unreachable statements report [false]. *)
val live_out_of : t -> stmt_id:int -> var:int -> bool
