(* Constant folding and algebraic simplification of pure IL expressions.
   Shared by constant propagation, induction-variable substitution, and
   the dependence analyzer's subscript normalizer. *)

open Vpc_il

let wrap32 n =
  (n land 0xFFFFFFFF) - (if n land 0x80000000 <> 0 then 1 lsl 32 else 0)

let bool_to_int b = if b then 1 else 0

let fold_int_binop (op : Expr.binop) x y : int option =
  match op with
  | Expr.Add -> Some (wrap32 (x + y))
  | Expr.Sub -> Some (wrap32 (x - y))
  | Expr.Mul -> Some (wrap32 (x * y))
  | Expr.Div ->
      if y = 0 then None
      else
        let q = abs x / abs y in
        Some (if (x < 0) <> (y < 0) then -q else q)
  | Expr.Rem ->
      if y = 0 then None
      else
        let r = abs x mod abs y in
        Some (if x < 0 then -r else r)
  | Expr.Shl -> Some (wrap32 (x lsl (y land 31)))
  | Expr.Shr -> Some (x asr (y land 31))
  | Expr.Band -> Some (x land y)
  | Expr.Bor -> Some (x lor y)
  | Expr.Bxor -> Some (x lxor y)
  | Expr.Eq -> Some (bool_to_int (x = y))
  | Expr.Ne -> Some (bool_to_int (x <> y))
  | Expr.Lt -> Some (bool_to_int (x < y))
  | Expr.Le -> Some (bool_to_int (x <= y))
  | Expr.Gt -> Some (bool_to_int (x > y))
  | Expr.Ge -> Some (bool_to_int (x >= y))

let fold_float_binop (op : Expr.binop) x y : [ `F of float | `I of int ] option =
  match op with
  | Expr.Add -> Some (`F (x +. y))
  | Expr.Sub -> Some (`F (x -. y))
  | Expr.Mul -> Some (`F (x *. y))
  | Expr.Div -> if y = 0.0 then None else Some (`F (x /. y))
  | Expr.Eq -> Some (`I (bool_to_int (x = y)))
  | Expr.Ne -> Some (`I (bool_to_int (x <> y)))
  | Expr.Lt -> Some (`I (bool_to_int (x < y)))
  | Expr.Le -> Some (`I (bool_to_int (x <= y)))
  | Expr.Gt -> Some (`I (bool_to_int (x > y)))
  | Expr.Ge -> Some (`I (bool_to_int (x >= y)))
  | Expr.Rem | Expr.Shl | Expr.Shr | Expr.Band | Expr.Bor | Expr.Bxor -> None

(* One bottom-up simplification pass. *)
let rec expr (e : Expr.t) : Expr.t =
  match e.Expr.desc with
  | Expr.Const_int _ | Expr.Const_float _ | Expr.Var _ | Expr.Addr_of _ -> e
  | Expr.Load p -> { e with desc = Expr.Load (expr p) }
  | Expr.Unop (op, a) -> simp_unop e op (expr a)
  | Expr.Cast (ty, a) -> simp_cast e ty (expr a)
  | Expr.Binop (op, a, b) -> simp_binop e op (expr a) (expr b)

and simp_unop e op (a : Expr.t) =
  match op, a.Expr.desc with
  | Expr.Neg, Expr.Const_int n -> { e with desc = Expr.Const_int (wrap32 (-n)) }
  | Expr.Neg, Expr.Const_float f -> { e with desc = Expr.Const_float (-.f) }
  | Expr.Neg, Expr.Unop (Expr.Neg, inner) -> { inner with ty = e.Expr.ty }
  | Expr.Lognot, Expr.Const_int n ->
      { e with desc = Expr.Const_int (bool_to_int (n = 0)) }
  | Expr.Lognot, Expr.Const_float f ->
      { e with desc = Expr.Const_int (bool_to_int (f = 0.0)) }
  | Expr.Bitnot, Expr.Const_int n ->
      { e with desc = Expr.Const_int (wrap32 (lnot n)) }
  | _ -> { e with desc = Expr.Unop (op, a) }

and simp_cast e ty (a : Expr.t) =
  if Ty.equal ty a.Expr.ty then a
  else
    match ty, a.Expr.desc with
    | Ty.Int, Expr.Const_int _ -> { a with ty = Ty.Int }
    | Ty.Int, Expr.Const_float f -> { e with desc = Expr.Const_int (int_of_float f) }
    | (Ty.Float | Ty.Double), Expr.Const_int n ->
        let f = float_of_int n in
        let f = if ty = Ty.Float then Int32.float_of_bits (Int32.bits_of_float f) else f in
        { Expr.desc = Expr.Const_float f; ty }
    | Ty.Double, Expr.Const_float _ -> { a with ty }
    | Ty.Float, Expr.Const_float f ->
        { Expr.desc = Expr.Const_float (Int32.float_of_bits (Int32.bits_of_float f)); ty }
    | Ty.Ptr _, (Expr.Addr_of _ | Expr.Var _ | Expr.Binop _) when Ty.is_pointer a.Expr.ty ->
        (* pointer-to-pointer casts are free *)
        { a with ty }
    | _, Expr.Cast (_, inner)
      when Ty.is_pointer ty && Ty.is_pointer inner.Expr.ty ->
        simp_cast e ty inner
    | _ -> { Expr.desc = Expr.Cast (ty, a); ty }

and simp_binop e op (a : Expr.t) (b : Expr.t) =
  let default () = { e with desc = Expr.Binop (op, a, b) } in
  let is_float = Ty.is_float e.Expr.ty || Ty.is_float a.Expr.ty in
  match a.Expr.desc, b.Expr.desc with
  | Expr.Const_int x, Expr.Const_int y -> (
      match fold_int_binop op x y with
      | Some r -> { e with desc = Expr.Const_int r }
      | None -> default ())
  | Expr.Const_float x, Expr.Const_float y -> (
      match fold_float_binop op x y with
      | Some (`F r) ->
          let r =
            if e.Expr.ty = Ty.Float then Int32.float_of_bits (Int32.bits_of_float r)
            else r
          in
          { e with desc = Expr.Const_float r }
      | Some (`I r) -> { e with desc = Expr.Const_int r }
      | None -> default ())
  | _ -> (
      (* algebraic identities; float identities are restricted to the
         always-safe ones (x*1, x/1, x+0 changes -0.0 but the paper's
         compiler took that licence too) *)
      match op, a.Expr.desc, b.Expr.desc with
      | Expr.Add, _, Expr.Const_int 0 -> { a with ty = e.Expr.ty }
      | Expr.Add, Expr.Const_int 0, _ -> { b with ty = e.Expr.ty }
      | Expr.Sub, _, Expr.Const_int 0 -> { a with ty = e.Expr.ty }
      | Expr.Mul, _, Expr.Const_int 1 -> { a with ty = e.Expr.ty }
      | Expr.Mul, Expr.Const_int 1, _ -> { b with ty = e.Expr.ty }
      | Expr.Mul, _, Expr.Const_int 0 when not is_float ->
          { e with desc = Expr.Const_int 0 }
      | Expr.Mul, Expr.Const_int 0, _ when not is_float ->
          { e with desc = Expr.Const_int 0 }
      | Expr.Mul, _, Expr.Const_float 1.0 -> { a with ty = e.Expr.ty }
      | Expr.Mul, Expr.Const_float 1.0, _ -> { b with ty = e.Expr.ty }
      | Expr.Div, _, Expr.Const_int 1 -> { a with ty = e.Expr.ty }
      | Expr.Div, _, Expr.Const_float 1.0 -> { a with ty = e.Expr.ty }
      | Expr.Sub, _, _ when (not is_float) && Expr.equal a b ->
          { e with desc = Expr.Const_int 0 }
      (* (x + c1) - (x + c2) and friends: cancel the equal symbolic part *)
      | Expr.Sub, Expr.Binop (Expr.Add, x1, { desc = Expr.Const_int c1; _ }),
        Expr.Binop (Expr.Add, x2, { desc = Expr.Const_int c2; _ })
        when (not is_float) && Expr.equal x1 x2 ->
          { e with desc = Expr.Const_int (c1 - c2) }
      | Expr.Sub, _, Expr.Binop (Expr.Add, x2, { desc = Expr.Const_int c2; _ })
        when (not is_float) && Expr.equal a x2 ->
          { e with desc = Expr.Const_int (-c2) }
      | Expr.Sub, Expr.Binop (Expr.Add, x1, { desc = Expr.Const_int c1; _ }), _
        when (not is_float) && Expr.equal x1 b ->
          { e with desc = Expr.Const_int c1 }
      (* reassociate (x + c1) + c2 and (x + c1) - c2 *)
      | Expr.Add, Expr.Binop (Expr.Add, x, { desc = Expr.Const_int c1; _ }),
        Expr.Const_int c2 ->
          simp_binop e Expr.Add x (Expr.int_const (c1 + c2))
      | Expr.Sub, Expr.Binop (Expr.Add, x, { desc = Expr.Const_int c1; _ }),
        Expr.Const_int c2 ->
          simp_binop e Expr.Add x (Expr.int_const (c1 - c2))
      | Expr.Add, Expr.Binop (Expr.Sub, x, { desc = Expr.Const_int c1; _ }),
        Expr.Const_int c2 ->
          simp_binop e Expr.Add x (Expr.int_const (c2 - c1))
      | _ -> default ())

(* Is the expression a "constant" in the propagation sense?  Address
   constants (&a) count — §9 relies on propagating them into subscripts. *)
let is_propagation_constant (e : Expr.t) =
  match e.Expr.desc with
  | Expr.Const_int _ | Expr.Const_float _ | Expr.Addr_of _ -> true
  | Expr.Binop (Expr.Add, { desc = Expr.Addr_of _; _ }, { desc = Expr.Const_int _; _ }) ->
      true  (* &a + 12 *)
  | _ -> false

(* Truth value of a constant condition, if decidable. *)
let const_truth (e : Expr.t) =
  match e.Expr.desc with
  | Expr.Const_int n -> Some (n <> 0)
  | Expr.Const_float f -> Some (f <> 0.0)
  | Expr.Addr_of _ -> Some true
  | _ -> None

let stmt_exprs_simplify (s : Stmt.t) = Stmt.map_exprs_shallow expr s
