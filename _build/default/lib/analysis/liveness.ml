(* Backward live-variable analysis over the CFG.  Dead-code elimination
   and induction-variable elimination consult live-out sets; unsafe
   variables (address-taken, global, volatile) are treated as live
   everywhere that matters. *)

open Vpc_support
open Vpc_il

type t = {
  cfg : Cfg.t;
  func : Func.t;
  var_index : (int, int) Hashtbl.t;  (* var id -> bit index *)
  index_var : int array;
  live_out : (int, Bitset.t) Hashtbl.t;  (* node id -> live-out set *)
  unsafe : (int, unit) Hashtbl.t;
}

let uses_of (s : Stmt.t) = Stmt.shallow_uses s

let def_of (s : Stmt.t) =
  match s.Stmt.desc with
  | Stmt.Assign (Stmt.Lvar v, _) -> Some v
  | Stmt.Call (Some (Stmt.Lvar v), _, _) -> Some v
  | Stmt.Do_loop d -> Some d.index
  | _ -> None

let build (func : Func.t) : t =
  let cfg = Cfg.build func in
  (* universe of scalar vars *)
  let var_index = Hashtbl.create 32 in
  let vars = ref [] in
  let n = ref 0 in
  let consider id =
    if not (Hashtbl.mem var_index id) then begin
      Hashtbl.replace var_index id !n;
      vars := id :: !vars;
      incr n
    end
  in
  let unsafe = Hashtbl.create 16 in
  Stmt.iter_list
    (fun s ->
      List.iter
        (fun e ->
          List.iter consider (Expr.read_vars e);
          List.iter
            (fun id ->
              consider id;
              Hashtbl.replace unsafe id ())
            (Expr.vars_addressed [] e))
        (Stmt.shallow_exprs s);
      match def_of s with Some v -> consider v | None -> ())
    func.Func.body;
  List.iter consider func.Func.params;
  Hashtbl.iter
    (fun id _idx ->
      match Func.find_var func id with
      | Some v -> if v.volatile || Var.is_global v then Hashtbl.replace unsafe id ()
      | None -> Hashtbl.replace unsafe id ())
    var_index;
  let index_var = Array.make !n 0 in
  Hashtbl.iter (fun id idx -> index_var.(idx) <- id) var_index;
  let nvars = !n in
  let live_in = Hashtbl.create 64 in
  let live_out = Hashtbl.create 64 in
  Cfg.iter_rpo
    (fun id _ ->
      Hashtbl.replace live_in id (Bitset.create nvars);
      Hashtbl.replace live_out id (Bitset.create nvars))
    cfg;
  (* Unsafe vars are live at exit: their values may be observed through
     memory or by callers. *)
  let exit_live = Hashtbl.find live_in Cfg.exit_id in
  Hashtbl.iter
    (fun id () ->
      match Hashtbl.find_opt var_index id with
      | Some idx -> Bitset.add exit_live idx
      | None -> ())
    unsafe;
  let changed = ref true in
  while !changed do
    changed := false;
    (* iterate in postorder (reverse of rpo) for backward flow *)
    List.iter
      (fun id ->
        let node = Cfg.node cfg id in
        let out = Hashtbl.find live_out id in
        List.iter
          (fun succ_id ->
            match Hashtbl.find_opt live_in succ_id with
            | Some succ_in -> ignore (Bitset.union_into out succ_in)
            | None -> ())
          node.Cfg.succs;
        let in_ = Bitset.copy out in
        (match node.Cfg.stmt with
        | None -> ()
        | Some s ->
            (match def_of s with
            | Some v -> (
                match Hashtbl.find_opt var_index v with
                | Some idx -> Bitset.remove in_ idx
                | None -> ())
            | None -> ());
            List.iter
              (fun v ->
                match Hashtbl.find_opt var_index v with
                | Some idx -> Bitset.add in_ idx
                | None -> ())
              (uses_of s));
        if not (Bitset.equal in_ (Hashtbl.find live_in id)) then begin
          changed := true;
          Hashtbl.replace live_in id in_
        end)
      (List.rev cfg.Cfg.rpo)
  done;
  { cfg; func; var_index; index_var; live_out; unsafe }

let live_out_of t ~stmt_id ~var =
  match Hashtbl.find_opt t.var_index var with
  | None -> false
  | Some idx -> (
      if Hashtbl.mem t.unsafe var then true
      else
        match Hashtbl.find_opt t.live_out stmt_id with
        | Some out -> Bitset.mem out idx
        | None -> false (* unreachable statement: nothing is live *))
