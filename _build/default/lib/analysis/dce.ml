(* Dead-code elimination: assignments to scalar variables that are not
   live afterwards are deleted.  The paper leans on this hard — the
   §5.3 temp chains and the §9 inlined daxpy both shrink to their useful
   cores only after induction-variable substitution makes the original
   updates dead. *)

open Vpc_il

type stats = { mutable removed : int }

let new_stats () = { removed = 0 }

let pass (func : Func.t) stats =
  let live = Liveness.build func in
  let changed = ref false in
  let rec walk stmts = List.concat_map walk_stmt stmts
  and walk_stmt (s : Stmt.t) : Stmt.t list =
    match s.Stmt.desc with
    | Stmt.Assign (Stmt.Lvar v, _)
      when not (Liveness.live_out_of live ~stmt_id:s.Stmt.id ~var:v) ->
        changed := true;
        stats.removed <- stats.removed + 1;
        []
    | Stmt.Nop ->
        changed := true;
        []
    | Stmt.If (c, t, e) -> [ { s with desc = Stmt.If (c, walk t, walk e) } ]
    | Stmt.While (li, c, body) ->
        [ { s with desc = Stmt.While (li, c, walk body) } ]
    | Stmt.Do_loop d ->
        [ { s with desc = Stmt.Do_loop { d with body = walk d.body } } ]
    | _ -> [ s ]
  in
  func.Func.body <- walk func.Func.body;
  !changed

(* Remove labels that no goto targets (they accumulate from lowering and
   inlining and get in the way of while→DO conversion). *)
let remove_unused_labels (func : Func.t) =
  let targets = Hashtbl.create 8 in
  Stmt.iter_list
    (fun s ->
      match s.Stmt.desc with
      | Stmt.Goto l -> Hashtbl.replace targets l ()
      | _ -> ())
    func.Func.body;
  let changed = ref false in
  func.Func.body <-
    Stmt.map_list
      (fun s ->
        match s.Stmt.desc with
        | Stmt.Label l when not (Hashtbl.mem targets l) ->
            changed := true;
            []
        | _ -> [ s ])
      func.Func.body;
  !changed

let max_rounds = 25

let run ?(stats = new_stats ()) (func : Func.t) =
  let any = ref false in
  let rec go round =
    if round < max_rounds then begin
      let a = pass func stats in
      let b = remove_unused_labels func in
      if a || b then begin
        any := true;
        go (round + 1)
      end
    end
  in
  go 0;
  !any
