(** Constant propagation with unreachable-code elimination (paper §8).

    Constants include address constants.  When an [if] condition folds,
    the dead arm is spliced out and the analysis re-runs — subsuming the
    paper's requeue heuristic ("all constant assignments whose
    definitions can reach any statement in this list are then added to
    the heap for another round") at some compile-time cost. *)

open Vpc_il

type stats = {
  mutable substitutions : int;
  mutable branches_folded : int;
  mutable loops_deleted : int;   (** zero-trip loops removed *)
  mutable stmts_removed : int;
}

val new_stats : unit -> stats

(** Run to fixpoint on one function; returns [true] if anything changed. *)
val run : ?stats:stats -> Prog.t -> Func.t -> bool
