(* Reaching definitions and use-def chains — the workhorse of the paper's
   scalar phase: while→DO conversion, induction-variable substitution and
   constant propagation are all "driven off the use-def graph" (§8).

   Scalar variables only.  A variable is *unsafe* when stores through
   pointers or calls may modify it (its address is taken, it has global
   lifetime, or it is volatile); every memory-writing statement produces a
   weak definition of each unsafe variable.  A use reached by any weak
   definition reports [Unknown]. *)

open Vpc_support
open Vpc_il

type def = {
  d_index : int;
  d_stmt : int;  (* defining stmt id; [entry_def_stmt] = function entry *)
  d_var : int;
  d_weak : bool;
  d_value : Expr.t option;  (* RHS when the def is [Assign (Lvar v, rhs)] *)
}

let entry_def_stmt = -1

type reach =
  | Defs of def list  (* exactly these strong/entry definitions reach *)
  | Unknown           (* a weak def (memory write / call) may intervene *)

type t = {
  cfg : Cfg.t;
  func : Func.t;
  prog : Prog.t option;
  defs : def array;
  defs_of_var : (int, int list) Hashtbl.t;
  unsafe : (int, unit) Hashtbl.t;
  ins : (int, Bitset.t) Hashtbl.t;  (* node id -> IN bitset *)
  tracked : (int, unit) Hashtbl.t;
}

(* Resolve variable metadata through the function, then the program. *)
let find_var_meta ?prog func id =
  match Func.find_var func id with
  | Some v -> Some v
  | None -> Option.bind prog (fun p -> Prog.find_var p (Some func) id)

let is_unsafe t var_id = Hashtbl.mem t.unsafe var_id

(* Variables defined (strongly) by a statement node itself. *)
let strong_def_of (s : Stmt.t) =
  match s.Stmt.desc with
  | Stmt.Assign (Stmt.Lvar v, rhs) -> Some (v, Some rhs)
  | Stmt.Call (Some (Stmt.Lvar v), _, _) -> Some (v, None)
  | Stmt.Do_loop d -> Some (d.index, None)
  | _ -> None

let writes_memory (s : Stmt.t) =
  match s.Stmt.desc with
  | Stmt.Assign (Stmt.Lmem _, _) | Stmt.Vector _ | Stmt.Call _ -> true
  | _ -> false

let build ?(prog : Prog.t option) (func : Func.t) : t =
  let cfg = Cfg.build func in
  (* Collect tracked vars and unsafe vars. *)
  let tracked = Hashtbl.create 32 in
  let unsafe = Hashtbl.create 16 in
  let mark_unsafe id = Hashtbl.replace unsafe id () in
  let consider id =
    Hashtbl.replace tracked id ();
    match find_var_meta ?prog func id with
    | Some v -> if v.volatile || Var.is_global v then mark_unsafe id
    | None -> mark_unsafe id  (* foreign variable *)
  in
  Stmt.iter_list
    (fun s ->
      List.iter
        (fun e ->
          List.iter consider (Expr.read_vars e);
          List.iter
            (fun id ->
              consider id;
              mark_unsafe id)
            (Expr.vars_addressed [] e))
        (Stmt.shallow_exprs s);
      match strong_def_of s with Some (v, _) -> consider v | None -> ())
    func.Func.body;
  List.iter consider func.Func.params;
  (match prog with
  | Some p ->
      Hashtbl.iter
        (fun id () -> if Hashtbl.mem p.Prog.globals id then mark_unsafe id)
        tracked
  | None -> ());
  (* Enumerate definitions. *)
  let defs = ref [] in
  let count = ref 0 in
  let defs_of_var : (int, int list) Hashtbl.t = Hashtbl.create 32 in
  let add_def d_stmt d_var d_weak d_value =
    let d = { d_index = !count; d_stmt; d_var; d_weak; d_value } in
    incr count;
    defs := d :: !defs;
    Hashtbl.replace defs_of_var d_var
      (d.d_index
      :: Option.value (Hashtbl.find_opt defs_of_var d_var) ~default:[]);
    d.d_index
  in
  let entry_defs = ref [] in
  Hashtbl.iter
    (fun id () -> entry_defs := add_def entry_def_stmt id false None :: !entry_defs)
    tracked;
  let strong_index : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let weak_of_stmt : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  Stmt.iter_list
    (fun s ->
      (match strong_def_of s with
      | Some (v, value) ->
          Hashtbl.replace strong_index s.Stmt.id (add_def s.Stmt.id v false value)
      | None -> ());
      if writes_memory s then begin
        let ws =
          Hashtbl.fold
            (fun v () acc -> add_def s.Stmt.id v true None :: acc)
            unsafe []
        in
        Hashtbl.replace weak_of_stmt s.Stmt.id ws
      end)
    func.Func.body;
  let defs = Array.of_list (List.rev !defs) in
  let ndefs = Array.length defs in
  (* GEN/KILL per node. *)
  let gen = Hashtbl.create 64 and kill = Hashtbl.create 64 in
  let empty () = Bitset.create ndefs in
  Cfg.iter_rpo
    (fun id node ->
      let g = empty () and k = empty () in
      (match node.Cfg.stmt with
      | None ->
          if id = Cfg.entry_id then List.iter (Bitset.add g) !entry_defs
      | Some s ->
          (match strong_def_of s with
          | Some (v, _) ->
              let own = Hashtbl.find strong_index s.Stmt.id in
              Bitset.add g own;
              List.iter
                (fun di -> if di <> own then Bitset.add k di)
                (Option.value (Hashtbl.find_opt defs_of_var v) ~default:[])
          | None -> ());
          match Hashtbl.find_opt weak_of_stmt s.Stmt.id with
          | Some ws -> List.iter (Bitset.add g) ws
          | None -> ());
      Hashtbl.replace gen id g;
      Hashtbl.replace kill id k)
    cfg;
  (* Fixpoint: IN[n] = ∪ OUT[p], OUT = gen ∪ (IN \ kill). *)
  let ins = Hashtbl.create 64 in
  let outs = Hashtbl.create 64 in
  Cfg.iter_rpo
    (fun id _ ->
      Hashtbl.replace ins id (empty ());
      Hashtbl.replace outs id (empty ()))
    cfg;
  let changed = ref true in
  while !changed do
    changed := false;
    Cfg.iter_rpo
      (fun id node ->
        let in_ = Hashtbl.find ins id in
        List.iter
          (fun p ->
            match Hashtbl.find_opt outs p with
            | Some out_p -> ignore (Bitset.union_into in_ out_p)
            | None -> ())
          node.Cfg.preds;
        let out = Bitset.copy in_ in
        Bitset.transfer ~gen:(Hashtbl.find gen id)
          ~kill:(Hashtbl.find kill id) out;
        if not (Bitset.equal out (Hashtbl.find outs id)) then begin
          changed := true;
          Hashtbl.replace outs id out
        end)
      cfg
  done;
  { cfg; func; prog; defs; defs_of_var; unsafe; ins; tracked }

(* Definitions of [var] reaching the *entry* of the statement node
   [stmt_id] (i.e. visible to uses in that statement). *)
let reaching t ~stmt_id ~var : reach =
  match Hashtbl.find_opt t.ins stmt_id with
  | None -> Unknown  (* unreachable statement *)
  | Some in_ ->
      let volatile =
        match find_var_meta ?prog:t.prog t.func var with
        | Some v -> v.volatile
        | None -> true  (* unknown variable: assume the worst *)
      in
      if volatile then Unknown
      else begin
        let result = ref [] in
        let weak = ref false in
        List.iter
          (fun di ->
            if Bitset.mem in_ di then begin
              let d = t.defs.(di) in
              if d.d_weak then weak := true else result := d :: !result
            end)
          (Option.value (Hashtbl.find_opt t.defs_of_var var) ~default:[]);
        if !weak then Unknown
        else Defs (List.sort (fun a b -> compare a.d_index b.d_index) !result)
      end

(* The single reaching definition, when there is exactly one and it is a
   real statement. *)
let unique_def t ~stmt_id ~var =
  match reaching t ~stmt_id ~var with
  | Defs [ d ] when d.d_stmt <> entry_def_stmt -> Some d
  | Defs _ | Unknown -> None

(* Is every reaching definition of [var] at [stmt_id] outside the
   statement-id set [inside]? *)
let all_defs_outside t ~stmt_id ~var ~inside =
  match reaching t ~stmt_id ~var with
  | Unknown -> false
  | Defs ds ->
      List.for_all
        (fun d ->
          d.d_stmt = entry_def_stmt || not (Hashtbl.mem inside d.d_stmt))
        ds

(* def-use chains: map def index -> list of (stmt id, var) uses it
   reaches.  Used by constant propagation's requeue heuristic (§8). *)
let def_uses t =
  let uses : (int, (int * int) list) Hashtbl.t = Hashtbl.create 64 in
  Cfg.iter_rpo
    (fun id node ->
      match node.Cfg.stmt with
      | None -> ()
      | Some s ->
          List.iter
            (fun var ->
              match reaching t ~stmt_id:id ~var with
              | Unknown -> ()
              | Defs ds ->
                  List.iter
                    (fun d ->
                      Hashtbl.replace uses d.d_index
                        ((s.Stmt.id, var)
                        :: Option.value
                             (Hashtbl.find_opt uses d.d_index)
                             ~default:[]))
                    ds)
            (Stmt.shallow_uses s))
    t.cfg;
  uses

(* Variables (strongly) defined anywhere within a statement list, plus
   whether the list writes memory — the ingredients of loop-invariance. *)
let vars_defined_in (body : Stmt.t list) =
  let set = Hashtbl.create 16 in
  let mem_written = ref false in
  List.iter
    (fun s ->
      Stmt.iter
        (fun s ->
          (match strong_def_of s with
          | Some (v, _) -> Hashtbl.replace set v ()
          | None -> ());
          if writes_memory s then mem_written := true)
        s)
    body;
  (set, !mem_written)

(* Is expression [e] invariant while [body] executes? *)
let invariant_in t (body : Stmt.t list) (e : Expr.t) =
  let defined, mem_written = vars_defined_in body in
  let ok = ref true in
  List.iter
    (fun v ->
      if Hashtbl.mem defined v then ok := false;
      if Hashtbl.mem t.unsafe v && mem_written then ok := false;
      match find_var_meta ?prog:t.prog t.func v with
      | Some vm -> if vm.volatile then ok := false
      | None -> ok := false)
    (Expr.read_vars e);
  if Expr.contains_load e && mem_written then ok := false;
  !ok
