(** Dead-code elimination: assignments to scalars not live afterwards are
    deleted (along with unused labels, which otherwise obstruct while→DO
    conversion).  The §5.3 temp chains and the §9 inlined daxpy both
    shrink to their useful cores only through this pass. *)

open Vpc_il

type stats = { mutable removed : int }

val new_stats : unit -> stats

(** Run to fixpoint; [true] if anything was removed. *)
val run : ?stats:stats -> Func.t -> bool
