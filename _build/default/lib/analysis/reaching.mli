(** Reaching definitions and use-def chains — the workhorse of the
    paper's scalar phase: while→DO conversion, induction-variable
    substitution, and constant propagation are all "driven off the
    use-def graph" (§8).

    Scalar variables only.  A variable is {e unsafe} when stores through
    pointers or calls may modify it (address taken, global lifetime, or
    volatile); every memory-writing statement weakly defines each unsafe
    variable, and a use reached by a weak definition reports
    {!reach.Unknown}. *)

open Vpc_il

type def = {
  d_index : int;
  d_stmt : int;   (** defining stmt id, or {!entry_def_stmt} *)
  d_var : int;
  d_weak : bool;
  d_value : Expr.t option;  (** RHS when the def is [v = rhs] *)
}

(** Pseudo-definition at function entry (parameter / unknown initial
    value). *)
val entry_def_stmt : int

type reach =
  | Defs of def list  (** exactly these strong/entry definitions reach *)
  | Unknown           (** a weak def or volatile access intervenes *)

type t

(** Variables the analysis considers unsafe. *)
val is_unsafe : t -> int -> bool

(** The scalar variable a statement strongly defines, with its RHS. *)
val strong_def_of : Stmt.t -> (int * Expr.t option) option

val writes_memory : Stmt.t -> bool

(** Build the analysis.  Pass [prog] so global/volatile metadata resolves
    for variables not in the function's own table. *)
val build : ?prog:Prog.t -> Func.t -> t

(** Definitions of [var] visible to uses in statement [stmt_id]. *)
val reaching : t -> stmt_id:int -> var:int -> reach

(** The single reaching definition, when there is exactly one and it is a
    real statement. *)
val unique_def : t -> stmt_id:int -> var:int -> def option

(** Does no definition inside the statement-id set [inside] reach the
    use? *)
val all_defs_outside :
  t -> stmt_id:int -> var:int -> inside:(int, unit) Hashtbl.t -> bool

(** def-use chains: def index → (stmt id, var) uses it reaches. *)
val def_uses : t -> (int, (int * int) list) Hashtbl.t

(** Variables strongly defined in a statement list, and whether it writes
    memory — the ingredients of loop invariance. *)
val vars_defined_in : Stmt.t list -> (int, unit) Hashtbl.t * bool

(** Is [e] invariant while [body] executes? *)
val invariant_in : t -> Stmt.t list -> Expr.t -> bool
