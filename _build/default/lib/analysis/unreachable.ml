(* Unreachable-code postpass (paper §8): "code immediately following
   branches that are always taken is difficult to uncover as unreachable
   during constant propagation.  The vectorizer has a separate postpass
   ... a quick heuristic" — statements between an unconditional transfer
   (goto/return) and the next label are deleted, and a goto directly to
   the following label is dropped.  A full CFG-reachability sweep is also
   provided for the stubborn cases. *)

open Vpc_il

type stats = { mutable removed : int }

let new_stats () = { removed = 0 }

(* The quick heuristic, applied within each statement list. *)
let quick_pass (func : Func.t) stats =
  let changed = ref false in
  let rec clean stmts =
    match stmts with
    | [] -> []
    | { Stmt.desc = Stmt.Goto l1; _ } :: ({ Stmt.desc = Stmt.Label l2; _ } as lab) :: rest
      when l1 = l2 ->
        changed := true;
        stats.removed <- stats.removed + 1;
        clean (lab :: rest)
    | ({ Stmt.desc = Stmt.Goto _ | Stmt.Return _; _ } as s) :: rest ->
        let rec drop = function
          | ({ Stmt.desc = Stmt.Label _; _ } :: _) as rest -> rest
          | _ :: tail ->
              changed := true;
              stats.removed <- stats.removed + 1;
              drop tail
          | [] -> []
        in
        s :: clean (drop rest)
    | s :: rest -> recurse s :: clean rest
  and recurse (s : Stmt.t) =
    match s.Stmt.desc with
    | Stmt.If (c, t, e) -> { s with desc = Stmt.If (c, clean t, clean e) }
    | Stmt.While (li, c, b) -> { s with desc = Stmt.While (li, c, clean b) }
    | Stmt.Do_loop d -> { s with desc = Stmt.Do_loop { d with body = clean d.body } }
    | _ -> s
  in
  func.Func.body <- clean func.Func.body;
  !changed

(* Full CFG reachability: delete statements whose node is unreachable from
   entry (loops and branch heads survive if reachable). *)
let cfg_pass (func : Func.t) stats =
  let cfg = Cfg.build func in
  let reach = Cfg.reachable cfg in
  let changed = ref false in
  func.Func.body <-
    Stmt.map_list
      (fun s ->
        match s.Stmt.desc with
        | Stmt.Nop -> [ s ]
        | _ ->
            if Hashtbl.mem reach s.Stmt.id then [ s ]
            else begin
              changed := true;
              stats.removed <- stats.removed + 1;
              []
            end)
      func.Func.body;
  !changed

let run ?(stats = new_stats ()) (func : Func.t) =
  let a = quick_pass func stats in
  let b = cfg_pass func stats in
  a || b
